//! Deterministic, parallel trial runner.
//!
//! A *trial* generates one random initial network, runs best-response dynamics
//! under the configured move policy until a stable network is reached (or the step
//! limit fires) and records the number of steps and the kinds of moves performed.
//! A *point* aggregates many independent trials; trials are distributed over worker
//! threads with `std::thread::scope`, each trial seeded as `base_seed + trial_index`
//! so that results are reproducible independent of the number of threads.
//!
//! Three layers are exposed so batch layers (the `ncg-lab` orchestrator) can
//! reuse exactly as much as they need:
//!
//! * [`run_dynamics_trial`] — one trial on an **already generated** initial
//!   network (topology generation decoupled from execution),
//! * [`run_trial_chunk`] — a contiguous, seeded trial range streamed into a
//!   caller-provided sink (the unit of checkpoint/resume),
//! * [`StreamingStats`] — a mergeable constant-size aggregate (count/min/max,
//!   Welford mean/variance, fixed-bucket steps-per-agent histogram) that
//!   replaces keeping every [`TrialResult`] in memory.

use crate::spec::{EngineSpec, ExperimentPoint};
use ncg_core::dynamics::{Dynamics, DynamicsConfig, ResponseMode};
use ncg_core::moves::Move;
use ncg_core::policy::{Policy, TieBreak};
use ncg_core::Game;
use ncg_graph::oracle::OracleStats;
use ncg_graph::OwnedGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// How many moves of each kind a trajectory contained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveKindCounts {
    /// Edge deletions.
    pub deletions: usize,
    /// Edge swaps.
    pub swaps: usize,
    /// Edge purchases.
    pub purchases: usize,
    /// Whole-strategy rewrites (`SetOwned` / `SetNeighbors` moves, played by
    /// the Buy Game and the bilateral game).
    pub strategy_rewrites: usize,
}

impl MoveKindCounts {
    fn record(&mut self, mv: &Move) {
        match mv {
            Move::Delete { .. } => self.deletions += 1,
            Move::Swap { .. } => self.swaps += 1,
            Move::Buy { .. } => self.purchases += 1,
            Move::SetOwned { .. } | Move::SetNeighbors { .. } => self.strategy_rewrites += 1,
        }
    }

    /// Total number of recorded moves; equals the trajectory's step count for
    /// every game family (whole-strategy rewrites included).
    pub fn total(&self) -> usize {
        self.deletions + self.swaps + self.purchases + self.strategy_rewrites
    }

    /// Adds another count set (summing field-wise).
    pub fn merge(&mut self, other: &MoveKindCounts) {
        self.deletions += other.deletions;
        self.swaps += other.swaps;
        self.purchases += other.purchases;
        self.strategy_rewrites += other.strategy_rewrites;
    }
}

/// Result of a single trial.
#[derive(Debug, Clone, Copy)]
pub struct TrialResult {
    /// Number of improving moves until convergence (or until the step limit).
    pub steps: usize,
    /// True if a stable network was reached.
    pub converged: bool,
    /// Move-kind breakdown of the trajectory.
    pub kinds: MoveKindCounts,
}

/// Number of fixed-width buckets of the steps-per-agent histogram.
pub const STEP_HIST_BUCKETS: usize = 32;
/// Width (in steps per agent) of one histogram bucket; the last bucket
/// additionally absorbs everything beyond the covered range.
pub const STEP_HIST_BUCKET_WIDTH: f64 = 0.5;

/// The histogram bucket of a `steps / n` ratio.
pub fn step_hist_bucket(steps: usize, n: usize) -> usize {
    if n == 0 {
        return STEP_HIST_BUCKETS - 1;
    }
    let ratio = steps as f64 / n as f64;
    ((ratio / STEP_HIST_BUCKET_WIDTH) as usize).min(STEP_HIST_BUCKETS - 1)
}

/// Constant-size streaming aggregate of trial results.
///
/// `push` consumes trials one by one; `merge` combines two aggregates with
/// Chan's parallel Welford update. Merging is exact for all integer fields and
/// deterministic for the floating-point moments **given a fixed merge order**
/// — batch layers must therefore always fold their chunk aggregates in chunk
/// order (not completion order) to obtain bit-identical results independent
/// of thread count or checkpoint/resume splits.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingStats {
    /// Number of trials aggregated.
    pub count: u64,
    /// Exact sum of all step counts.
    pub total_steps: u64,
    /// Minimum steps observed (`u64::MAX` while empty).
    pub min_steps: u64,
    /// Maximum steps observed.
    pub max_steps: u64,
    /// Trials that hit the step limit without converging.
    pub non_converged: u64,
    /// Summed move-kind counts.
    pub kinds: MoveKindCounts,
    /// Welford running mean of the step count.
    pub mean: f64,
    /// Welford running sum of squared deviations.
    pub m2: f64,
    /// Fixed-bucket histogram of `steps / n` (bucket width
    /// [`STEP_HIST_BUCKET_WIDTH`], last bucket open-ended).
    pub hist: [u64; STEP_HIST_BUCKETS],
}

impl Default for StreamingStats {
    fn default() -> Self {
        StreamingStats {
            count: 0,
            total_steps: 0,
            min_steps: u64::MAX,
            max_steps: 0,
            non_converged: 0,
            kinds: MoveKindCounts::default(),
            mean: 0.0,
            m2: 0.0,
            hist: [0; STEP_HIST_BUCKETS],
        }
    }
}

impl StreamingStats {
    /// An empty aggregate.
    pub fn new() -> Self {
        StreamingStats::default()
    }

    /// Folds one trial of a point with `n` agents into the aggregate.
    pub fn push(&mut self, result: &TrialResult, n: usize) {
        let steps = result.steps as u64;
        self.count += 1;
        self.total_steps += steps;
        self.min_steps = self.min_steps.min(steps);
        self.max_steps = self.max_steps.max(steps);
        if !result.converged {
            self.non_converged += 1;
        }
        self.kinds.merge(&result.kinds);
        let delta = result.steps as f64 - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (result.steps as f64 - self.mean);
        self.hist[step_hist_bucket(result.steps, n)] += 1;
    }

    /// Merges `other` into `self` (Chan's pairwise Welford combination).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let delta = other.mean - self.mean;
        let total = na + nb;
        self.mean += delta * (nb / total);
        self.m2 += other.m2 + delta * delta * (na * nb / total);
        self.count += other.count;
        self.total_steps += other.total_steps;
        self.min_steps = self.min_steps.min(other.min_steps);
        self.max_steps = self.max_steps.max(other.max_steps);
        self.non_converged += other.non_converged;
        self.kinds.merge(&other.kinds);
        for (a, b) in self.hist.iter_mut().zip(other.hist.iter()) {
            *a += b;
        }
    }

    /// Sample standard deviation of the step count (0 for fewer than two trials).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Collapses the aggregate into the figure pipeline's [`PointSummary`].
    pub fn summary(&self, n: usize) -> PointSummary {
        PointSummary {
            n,
            trials: self.count as usize,
            avg_steps: if self.count == 0 {
                0.0
            } else {
                self.total_steps as f64 / self.count as f64
            },
            max_steps: self.max_steps as usize,
            min_steps: if self.count == 0 {
                0
            } else {
                self.min_steps as usize
            },
            non_converged: self.non_converged as usize,
            kinds: self.kinds,
        }
    }
}

/// Aggregated results of all trials of an experiment point.
#[derive(Debug, Clone)]
pub struct PointSummary {
    /// Number of agents.
    pub n: usize,
    /// Number of trials.
    pub trials: usize,
    /// Average number of steps until convergence.
    pub avg_steps: f64,
    /// Maximum number of steps observed.
    pub max_steps: usize,
    /// Minimum number of steps observed.
    pub min_steps: usize,
    /// Number of trials that did *not* converge within the step limit
    /// (the paper never observed any; neither do we).
    pub non_converged: usize,
    /// Summed move-kind counts over all trials.
    pub kinds: MoveKindCounts,
}

impl PointSummary {
    /// Average steps per agent (`avg_steps / n`), the quantity the paper's
    /// "converges in O(n) steps" observation is about.
    pub fn avg_steps_per_agent(&self) -> f64 {
        self.avg_steps / self.n as f64
    }
}

/// Runs best-response dynamics on an **already generated** initial network
/// until convergence or `max_steps`. This is the execution core shared by
/// [`run_trial_with_game`] and the `ncg-lab` scenario orchestrator, which
/// generates initial networks from its own catalog.
///
/// `rng` must be the trial's seeded stream, already advanced past topology
/// generation. The parallel-scan *width* in `engine` never influences the
/// trajectory (worker threads consume no randomness); whether the scan is
/// parallel at all does, because mover selection draws from `rng` differently.
pub fn run_dynamics_trial(
    game: &(dyn Game + Send + Sync),
    initial: OwnedGraph,
    policy: Policy,
    engine: EngineSpec,
    max_steps: usize,
    rng: &mut StdRng,
) -> TrialResult {
    run_dynamics_trial_probed(game, initial, policy, engine, max_steps, rng).0
}

/// Like [`run_dynamics_trial`], additionally returning the oracle's work
/// counters for the whole trial (ablation probes; the counters never
/// influence the trajectory).
pub fn run_dynamics_trial_probed(
    game: &(dyn Game + Send + Sync),
    initial: OwnedGraph,
    policy: Policy,
    engine: EngineSpec,
    max_steps: usize,
    rng: &mut StdRng,
) -> (TrialResult, OracleStats) {
    // One span per trial: the dynamics' scan/confirmation-sweep/apply/warm
    // spans and the oracle's phases all nest beneath it, so a harvested
    // `TraceReport` reads as a per-trial phase tree.
    let _sp = ncg_trace::span(ncg_trace::Phase::Trial);
    let config = DynamicsConfig {
        policy,
        tie_break: TieBreak::Random,
        response_mode: ResponseMode::BestResponse,
        max_steps,
        detect_cycles: false,
        record_trajectory: false,
        ownership_in_state: true,
        oracle: engine.oracle,
        oracle_cache_budget: engine.oracle_cache_budget,
        oracle_byte_budget: engine.oracle_byte_budget,
        // The parallel scan is a full rescan; maintaining the dirty set next
        // to it would only burn endpoint BFS runs nobody reads.
        dirty_agents: engine.dirty_agents && engine.parallel_scan.is_none(),
        warm_parked: engine.warm_parked,
        warm_batching: engine.warm_batching,
    };
    let mut dynamics = Dynamics::new(game, initial, config);
    let mut kinds = MoveKindCounts::default();
    let mut steps = 0usize;
    let converged = loop {
        if steps >= max_steps {
            break false;
        }
        let record = match engine.parallel_scan {
            Some(threads) => dynamics.step_parallel(rng, threads),
            None => dynamics.step(rng),
        };
        match record {
            Some(record) => {
                kinds.record(&record.mv);
                steps += 1;
            }
            None => break true,
        }
    };
    let stats = dynamics.oracle_stats();
    (
        TrialResult {
            steps,
            converged,
            kinds,
        },
        stats,
    )
}

/// Runs a single trial of `point` with the given trial index.
pub fn run_trial(point: &ExperimentPoint, trial_index: usize) -> TrialResult {
    let game = point.make_game();
    run_trial_with_game(point, game.as_ref(), trial_index)
}

/// **The** trial-seeding convention, shared by every batch layer: trial `t`
/// seeds its RNG stream with `base_seed + t`, `generate` consumes whatever
/// randomness it needs for the initial network, and the dynamics continue on
/// the *same* stream. Checkpoint/resume exactness rests on every executor
/// deriving trials this way and only this way.
pub fn run_seeded_trial(
    game: &(dyn Game + Send + Sync),
    policy: Policy,
    engine: EngineSpec,
    max_steps: usize,
    base_seed: u64,
    trial_index: usize,
    generate: impl FnOnce(&mut StdRng) -> OwnedGraph,
) -> TrialResult {
    run_seeded_trial_probed(
        game,
        policy,
        engine,
        max_steps,
        base_seed,
        trial_index,
        generate,
    )
    .0
}

/// Like [`run_seeded_trial`], additionally returning the trial's oracle work
/// counters — the single place the trial-seeding convention is implemented.
#[allow(clippy::too_many_arguments)]
pub fn run_seeded_trial_probed(
    game: &(dyn Game + Send + Sync),
    policy: Policy,
    engine: EngineSpec,
    max_steps: usize,
    base_seed: u64,
    trial_index: usize,
    generate: impl FnOnce(&mut StdRng) -> OwnedGraph,
) -> (TrialResult, OracleStats) {
    let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(trial_index as u64));
    let initial = {
        let _sp = ncg_trace::span(ncg_trace::Phase::Setup);
        generate(&mut rng)
    };
    run_dynamics_trial_probed(game, initial, policy, engine, max_steps, &mut rng)
}

/// Runs a single trial re-using an already constructed game (avoids the per-trial
/// boxing when the caller runs many trials of the same point).
pub fn run_trial_with_game(
    point: &ExperimentPoint,
    game: &(dyn Game + Send + Sync),
    trial_index: usize,
) -> TrialResult {
    run_trial_with_game_probed(point, game, trial_index).0
}

/// Like [`run_trial_with_game`], additionally returning the trial's oracle
/// work counters (the `oracle_ablation` snapshot records them per engine).
pub fn run_trial_with_game_probed(
    point: &ExperimentPoint,
    game: &(dyn Game + Send + Sync),
    trial_index: usize,
) -> (TrialResult, OracleStats) {
    run_seeded_trial_probed(
        game,
        point.policy,
        point.engine,
        point.max_steps(),
        point.base_seed,
        trial_index,
        |rng| point.topology.generate(point.n, rng),
    )
}

/// Runs the contiguous trial range `start .. start + len` of `point`,
/// streaming each result (with its trial index) into `sink` in index order.
///
/// A chunk is the natural unit of batched execution: its content depends only
/// on `(point, start, len)` — never on threads or wall-clock — which is what
/// makes chunk-granular checkpoint/resume exact.
pub fn run_trial_chunk(
    point: &ExperimentPoint,
    game: &(dyn Game + Send + Sync),
    start: usize,
    len: usize,
    mut sink: impl FnMut(usize, TrialResult),
) {
    for t in start..start + len {
        sink(t, run_trial_with_game(point, game, t));
    }
}

/// Runs all trials of `point`, distributing them over `threads` worker threads
/// (defaults to the number of available CPUs when `None`).
pub fn run_point(point: &ExperimentPoint, threads: Option<usize>) -> PointSummary {
    let results = run_point_trials(point, threads);
    summarize(point, &results)
}

/// Like [`run_point`], but returns the per-trial results **indexed by trial**
/// (slot `t` holds trial `t` regardless of which worker finished it when), so
/// per-trial output is deterministic and journalable.
pub fn run_point_trials(point: &ExperimentPoint, threads: Option<usize>) -> Vec<TrialResult> {
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(point.trials.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Mutex<Vec<Option<TrialResult>>> = Mutex::new(vec![None; point.trials]);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let game = point.make_game();
                loop {
                    let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if t >= point.trials {
                        break;
                    }
                    let result = run_trial_with_game(point, game.as_ref(), t);
                    results.lock().expect("runner mutex poisoned")[t] = Some(result);
                }
            });
        }
    });

    results
        .into_inner()
        .expect("runner mutex poisoned")
        .into_iter()
        .map(|r| r.expect("every trial index was claimed exactly once"))
        .collect()
}

fn summarize(point: &ExperimentPoint, results: &[TrialResult]) -> PointSummary {
    let mut stats = StreamingStats::new();
    for r in results {
        stats.push(r, point.n);
    }
    stats.summary(point.n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AlphaSpec, EngineSpec, GameFamily, InitialTopology};
    use ncg_core::policy::Policy;

    fn small_point(
        family: GameFamily,
        topology: InitialTopology,
        policy: Policy,
    ) -> ExperimentPoint {
        ExperimentPoint {
            n: 14,
            family,
            alpha: AlphaSpec::FractionOfN(0.25),
            topology,
            policy,
            trials: 6,
            base_seed: 99,
            max_steps_factor: 200,
            engine: EngineSpec::default(),
        }
    }

    #[test]
    fn trials_are_reproducible() {
        let point = small_point(
            GameFamily::AsgSum,
            InitialTopology::Budgeted { k: 2 },
            Policy::MaxCost,
        );
        let a = run_trial(&point, 3);
        let b = run_trial(&point, 3);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.kinds, b.kinds);
    }

    #[test]
    fn asg_trials_only_swap() {
        let point = small_point(
            GameFamily::AsgMax,
            InitialTopology::Budgeted { k: 1 },
            Policy::Random,
        );
        let r = run_trial(&point, 0);
        assert!(r.converged);
        assert_eq!(r.kinds.deletions, 0);
        assert_eq!(r.kinds.purchases, 0);
        assert_eq!(r.kinds.strategy_rewrites, 0);
        assert_eq!(r.kinds.swaps, r.steps);
    }

    #[test]
    fn gbg_trials_converge_and_count_kinds() {
        let point = small_point(
            GameFamily::GbgSum,
            InitialTopology::RandomEdges { m_per_n: 2 },
            Policy::MaxCost,
        );
        let r = run_trial(&point, 1);
        assert!(r.converged);
        assert_eq!(r.kinds.total(), r.steps);
    }

    #[test]
    fn strategy_rewrites_are_counted_towards_the_total() {
        // `SetOwned` / `SetNeighbors` moves (Buy-Game whole-strategy changes)
        // used to be dropped silently, breaking `total() == steps`.
        let mut kinds = MoveKindCounts::default();
        kinds.record(&Move::Buy { to: 3 });
        kinds.record(&Move::SetOwned {
            new_owned: vec![1, 2],
        });
        kinds.record(&Move::SetNeighbors {
            new_neighbors: vec![0],
        });
        assert_eq!(kinds.purchases, 1);
        assert_eq!(kinds.strategy_rewrites, 2);
        assert_eq!(kinds.total(), 3);
    }

    #[test]
    fn point_summary_aggregates() {
        let point = small_point(
            GameFamily::GbgSum,
            InitialTopology::RandomEdges { m_per_n: 1 },
            Policy::Random,
        );
        let summary = run_point(&point, Some(2));
        assert_eq!(summary.trials, 6);
        assert_eq!(summary.non_converged, 0, "all trials must converge");
        assert!(summary.min_steps <= summary.max_steps);
        assert!(summary.avg_steps <= summary.max_steps as f64);
        assert!(summary.avg_steps >= summary.min_steps as f64);
        assert!(summary.avg_steps_per_agent() < 10.0);
    }

    #[test]
    fn parallel_and_sequential_summaries_agree() {
        let point = small_point(
            GameFamily::AsgSum,
            InitialTopology::Budgeted { k: 2 },
            Policy::MaxCost,
        );
        let par = run_point(&point, Some(3));
        let seq = run_point(&point, Some(1));
        assert_eq!(par.avg_steps, seq.avg_steps);
        assert_eq!(par.max_steps, seq.max_steps);
        assert_eq!(par.kinds, seq.kinds);
    }

    #[test]
    fn per_trial_results_are_indexed_by_trial() {
        let point = small_point(
            GameFamily::AsgSum,
            InitialTopology::Budgeted { k: 2 },
            Policy::MaxCost,
        );
        let multi = run_point_trials(&point, Some(3));
        for (t, r) in multi.iter().enumerate() {
            let solo = run_trial(&point, t);
            assert_eq!(r.steps, solo.steps, "trial {t}");
            assert_eq!(r.kinds, solo.kinds, "trial {t}");
        }
    }

    #[test]
    fn chunked_execution_matches_individual_trials() {
        let point = small_point(
            GameFamily::GbgSum,
            InitialTopology::RandomEdges { m_per_n: 1 },
            Policy::Random,
        );
        let game = point.make_game();
        let mut seen = Vec::new();
        run_trial_chunk(&point, game.as_ref(), 2, 3, |t, r| seen.push((t, r)));
        assert_eq!(seen.len(), 3);
        for (i, (t, r)) in seen.iter().enumerate() {
            assert_eq!(*t, 2 + i, "indices stream in order");
            let solo = run_trial(&point, *t);
            assert_eq!(r.steps, solo.steps);
            assert_eq!(r.kinds, solo.kinds);
        }
    }

    #[test]
    fn streaming_stats_match_batch_summary_and_merge_orderly() {
        let point = small_point(
            GameFamily::AsgSum,
            InitialTopology::Budgeted { k: 2 },
            Policy::MaxCost,
        );
        let results = run_point_trials(&point, Some(1));
        // One pass over everything…
        let mut whole = StreamingStats::new();
        for r in &results {
            whole.push(r, point.n);
        }
        // …must equal chunked accumulation merged in chunk order.
        let mut merged = StreamingStats::new();
        for chunk in results.chunks(2) {
            let mut part = StreamingStats::new();
            for r in chunk {
                part.push(r, point.n);
            }
            merged.merge(&part);
        }
        assert_eq!(whole.count, merged.count);
        assert_eq!(whole.total_steps, merged.total_steps);
        assert_eq!(whole.hist, merged.hist);
        assert!((whole.mean - merged.mean).abs() < 1e-9);
        assert!((whole.std_dev() - merged.std_dev()).abs() < 1e-9);
        let summary = whole.summary(point.n);
        let batch = run_point(&point, Some(2));
        assert_eq!(summary.trials, batch.trials);
        assert_eq!(summary.avg_steps, batch.avg_steps);
        assert_eq!(summary.max_steps, batch.max_steps);
        assert_eq!(summary.min_steps, batch.min_steps);
        assert_eq!(summary.kinds, batch.kinds);
        // Histogram sanity: every trial landed in exactly one bucket.
        assert_eq!(whole.hist.iter().sum::<u64>(), whole.count);
    }

    #[test]
    fn empty_streaming_stats_collapse_safely() {
        let stats = StreamingStats::new();
        let s = stats.summary(10);
        assert_eq!(s.trials, 0);
        assert_eq!(s.avg_steps, 0.0);
        assert_eq!(s.min_steps, 0);
        assert_eq!(stats.std_dev(), 0.0);
        let mut merged = StreamingStats::new();
        merged.merge(&stats);
        assert_eq!(merged, StreamingStats::new());
    }
}
