//! Deterministic, parallel trial runner.
//!
//! A *trial* generates one random initial network, runs best-response dynamics
//! under the configured move policy until a stable network is reached (or the step
//! limit fires) and records the number of steps and the kinds of moves performed.
//! A *point* aggregates many independent trials; trials are distributed over worker
//! threads with `std::thread::scope`, each trial seeded as `base_seed + trial_index`
//! so that results are reproducible independent of the number of threads.

use crate::spec::ExperimentPoint;
use ncg_core::dynamics::{Dynamics, DynamicsConfig, ResponseMode};
use ncg_core::moves::Move;
use ncg_core::policy::TieBreak;
use ncg_core::Game;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// How many moves of each kind a trajectory contained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveKindCounts {
    /// Edge deletions.
    pub deletions: usize,
    /// Edge swaps.
    pub swaps: usize,
    /// Edge purchases.
    pub purchases: usize,
}

impl MoveKindCounts {
    fn record(&mut self, mv: &Move) {
        match mv {
            Move::Delete { .. } => self.deletions += 1,
            Move::Swap { .. } => self.swaps += 1,
            Move::Buy { .. } => self.purchases += 1,
            Move::SetOwned { .. } | Move::SetNeighbors { .. } => {}
        }
    }

    /// Total number of recorded moves.
    pub fn total(&self) -> usize {
        self.deletions + self.swaps + self.purchases
    }
}

/// Result of a single trial.
#[derive(Debug, Clone, Copy)]
pub struct TrialResult {
    /// Number of improving moves until convergence (or until the step limit).
    pub steps: usize,
    /// True if a stable network was reached.
    pub converged: bool,
    /// Move-kind breakdown of the trajectory.
    pub kinds: MoveKindCounts,
}

/// Aggregated results of all trials of an experiment point.
#[derive(Debug, Clone)]
pub struct PointSummary {
    /// Number of agents.
    pub n: usize,
    /// Number of trials.
    pub trials: usize,
    /// Average number of steps until convergence.
    pub avg_steps: f64,
    /// Maximum number of steps observed.
    pub max_steps: usize,
    /// Minimum number of steps observed.
    pub min_steps: usize,
    /// Number of trials that did *not* converge within the step limit
    /// (the paper never observed any; neither do we).
    pub non_converged: usize,
    /// Summed move-kind counts over all trials.
    pub kinds: MoveKindCounts,
}

impl PointSummary {
    /// Average steps per agent (`avg_steps / n`), the quantity the paper's
    /// "converges in O(n) steps" observation is about.
    pub fn avg_steps_per_agent(&self) -> f64 {
        self.avg_steps / self.n as f64
    }
}

/// Runs a single trial of `point` with the given trial index.
pub fn run_trial(point: &ExperimentPoint, trial_index: usize) -> TrialResult {
    let game = point.make_game();
    run_trial_with_game(point, game.as_ref(), trial_index)
}

/// Runs a single trial re-using an already constructed game (avoids the per-trial
/// boxing when the caller runs many trials of the same point).
pub fn run_trial_with_game(
    point: &ExperimentPoint,
    game: &(dyn Game + Send + Sync),
    trial_index: usize,
) -> TrialResult {
    let mut rng = StdRng::seed_from_u64(point.base_seed.wrapping_add(trial_index as u64));
    let initial = point.topology.generate(point.n, &mut rng);
    let config = DynamicsConfig {
        policy: point.policy,
        tie_break: TieBreak::Random,
        response_mode: ResponseMode::BestResponse,
        max_steps: point.max_steps(),
        detect_cycles: false,
        record_trajectory: false,
        ownership_in_state: true,
        oracle: point.engine.oracle,
        // The parallel scan is a full rescan; maintaining the dirty set next
        // to it would only burn endpoint BFS runs nobody reads.
        dirty_agents: point.engine.dirty_agents && point.engine.parallel_scan.is_none(),
    };
    let mut dynamics = Dynamics::new(game, initial, config);
    let mut kinds = MoveKindCounts::default();
    let mut steps = 0usize;
    let converged = loop {
        if steps >= point.max_steps() {
            break false;
        }
        let record = match point.engine.parallel_scan {
            Some(threads) => dynamics.step_parallel(&mut rng, threads),
            None => dynamics.step(&mut rng),
        };
        match record {
            Some(record) => {
                kinds.record(&record.mv);
                steps += 1;
            }
            None => break true,
        }
    };
    TrialResult {
        steps,
        converged,
        kinds,
    }
}

/// Runs all trials of `point`, distributing them over `threads` worker threads
/// (defaults to the number of available CPUs when `None`).
pub fn run_point(point: &ExperimentPoint, threads: Option<usize>) -> PointSummary {
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(point.trials.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Mutex<Vec<TrialResult>> = Mutex::new(Vec::with_capacity(point.trials));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let game = point.make_game();
                loop {
                    let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if t >= point.trials {
                        break;
                    }
                    let result = run_trial_with_game(point, game.as_ref(), t);
                    results.lock().expect("runner mutex poisoned").push(result);
                }
            });
        }
    });

    let results = results.into_inner().expect("runner mutex poisoned");
    summarize(point, &results)
}

fn summarize(point: &ExperimentPoint, results: &[TrialResult]) -> PointSummary {
    let trials = results.len();
    let mut avg = 0.0;
    let mut max = 0usize;
    let mut min = usize::MAX;
    let mut non_converged = 0usize;
    let mut kinds = MoveKindCounts::default();
    for r in results {
        avg += r.steps as f64;
        max = max.max(r.steps);
        min = min.min(r.steps);
        if !r.converged {
            non_converged += 1;
        }
        kinds.deletions += r.kinds.deletions;
        kinds.swaps += r.kinds.swaps;
        kinds.purchases += r.kinds.purchases;
    }
    if trials > 0 {
        avg /= trials as f64;
    } else {
        min = 0;
    }
    PointSummary {
        n: point.n,
        trials,
        avg_steps: avg,
        max_steps: max,
        min_steps: min,
        non_converged,
        kinds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AlphaSpec, EngineSpec, GameFamily, InitialTopology};
    use ncg_core::policy::Policy;

    fn small_point(
        family: GameFamily,
        topology: InitialTopology,
        policy: Policy,
    ) -> ExperimentPoint {
        ExperimentPoint {
            n: 14,
            family,
            alpha: AlphaSpec::FractionOfN(0.25),
            topology,
            policy,
            trials: 6,
            base_seed: 99,
            max_steps_factor: 200,
            engine: EngineSpec::default(),
        }
    }

    #[test]
    fn trials_are_reproducible() {
        let point = small_point(
            GameFamily::AsgSum,
            InitialTopology::Budgeted { k: 2 },
            Policy::MaxCost,
        );
        let a = run_trial(&point, 3);
        let b = run_trial(&point, 3);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.kinds, b.kinds);
    }

    #[test]
    fn asg_trials_only_swap() {
        let point = small_point(
            GameFamily::AsgMax,
            InitialTopology::Budgeted { k: 1 },
            Policy::Random,
        );
        let r = run_trial(&point, 0);
        assert!(r.converged);
        assert_eq!(r.kinds.deletions, 0);
        assert_eq!(r.kinds.purchases, 0);
        assert_eq!(r.kinds.swaps, r.steps);
    }

    #[test]
    fn gbg_trials_converge_and_count_kinds() {
        let point = small_point(
            GameFamily::GbgSum,
            InitialTopology::RandomEdges { m_per_n: 2 },
            Policy::MaxCost,
        );
        let r = run_trial(&point, 1);
        assert!(r.converged);
        assert_eq!(r.kinds.total(), r.steps);
    }

    #[test]
    fn point_summary_aggregates() {
        let point = small_point(
            GameFamily::GbgSum,
            InitialTopology::RandomEdges { m_per_n: 1 },
            Policy::Random,
        );
        let summary = run_point(&point, Some(2));
        assert_eq!(summary.trials, 6);
        assert_eq!(summary.non_converged, 0, "all trials must converge");
        assert!(summary.min_steps <= summary.max_steps);
        assert!(summary.avg_steps <= summary.max_steps as f64);
        assert!(summary.avg_steps >= summary.min_steps as f64);
        assert!(summary.avg_steps_per_agent() < 10.0);
    }

    #[test]
    fn parallel_and_sequential_summaries_agree() {
        let point = small_point(
            GameFamily::AsgSum,
            InitialTopology::Budgeted { k: 2 },
            Policy::MaxCost,
        );
        let par = run_point(&point, Some(3));
        let seq = run_point(&point, Some(1));
        assert_eq!(par.avg_steps, seq.avg_steps);
        assert_eq!(par.max_steps, seq.max_steps);
        assert_eq!(par.kinds, seq.kinds);
    }
}
