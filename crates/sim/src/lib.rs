//! # ncg-sim
//!
//! The empirical-study harness of *On Dynamics in Selfish Network Creation*
//! (Kawald & Lenzner, SPAA 2013), §3.4 and §4.2.
//!
//! The paper simulates best-response dynamics of the bounded-budget Asymmetric
//! Swap Game (Fig. 7 / Fig. 8) and of the Greedy Buy Game (Fig. 11 – Fig. 14) on
//! random initial networks, under the max-cost and the random move policy, and
//! reports the average and maximum number of steps until a stable network is
//! reached. This crate provides:
//!
//! * [`spec`] — declarative experiment descriptions (game family, α-rule, initial
//!   topology, move policy, number of agents and trials),
//! * [`runner`] — a deterministic, seedable, thread-parallel trial runner with
//!   move-kind accounting (deletions / swaps / purchases per trajectory phase),
//! * [`experiments`] — the exact parameter sweeps behind every empirical figure of
//!   the paper,
//! * [`report`] — plain-text and CSV rendering of the measured series next to the
//!   paper's qualitative envelopes (5n, 7n, 8n, n·log n, …).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;
pub mod spec;

pub use experiments::{all_figures, figure, FigureDef, SeriesDef};
pub use report::{render_csv, render_table, FigureData, SeriesData};
pub use runner::{
    run_dynamics_trial, run_dynamics_trial_probed, run_point, run_point_trials, run_seeded_trial,
    run_seeded_trial_probed, run_trial, run_trial_chunk, run_trial_with_game,
    run_trial_with_game_probed, step_hist_bucket, MoveKindCounts, PointSummary, StreamingStats,
    TrialResult, STEP_HIST_BUCKETS, STEP_HIST_BUCKET_WIDTH,
};
pub use spec::{AlphaSpec, EngineSpec, ExperimentPoint, GameFamily, InitialTopology};
