//! Rendering of measured figure data as plain-text tables and CSV.

use crate::experiments::FigureDef;
use crate::runner::PointSummary;
use std::fmt::Write as _;

/// Measured data of one series (curve) of a figure.
#[derive(Debug, Clone)]
pub struct SeriesData {
    /// Legend label.
    pub label: String,
    /// One summary per sweep point.
    pub points: Vec<PointSummary>,
}

/// Measured data of one figure.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Figure identifier (`"fig07"`, …).
    pub id: String,
    /// Caption-style title.
    pub title: String,
    /// All measured series.
    pub series: Vec<SeriesData>,
}

impl FigureData {
    /// Runs the figure definition and collects the results.
    pub fn measure(def: &FigureDef, threads: Option<usize>) -> Self {
        let series = def
            .run(threads)
            .into_iter()
            .map(|(label, points)| SeriesData { label, points })
            .collect();
        FigureData {
            id: def.id.to_string(),
            title: def.title.to_string(),
            series,
        }
    }

    /// True if every trial of every point converged (the paper's headline
    /// empirical observation).
    pub fn all_converged(&self) -> bool {
        self.series
            .iter()
            .all(|s| s.points.iter().all(|p| p.non_converged == 0))
    }

    /// The largest observed `max_steps / n` ratio over all series and points —
    /// comparable to the paper's 5n / 7n / 8n envelopes.
    pub fn worst_steps_per_agent(&self) -> f64 {
        self.series
            .iter()
            .flat_map(|s| s.points.iter())
            .map(|p| p.max_steps as f64 / p.n as f64)
            .fold(0.0, f64::max)
    }
}

/// Renders the measured data as a plain-text table: one block per series with the
/// average and maximum steps per `n`, next to the paper's envelopes.
pub fn render_table(def: &FigureDef, data: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} ({})", data.title, data.id);
    let _ = writeln!(out, "{}", "=".repeat(data.title.len() + data.id.len() + 3));
    for series in &data.series {
        let _ = writeln!(out, "\nseries: {}", series.label);
        let _ = write!(
            out,
            "{:>6} {:>12} {:>10} {:>10}",
            "n", "avg steps", "max", "trials"
        );
        for (label, _) in &def.envelopes {
            let _ = write!(out, " {:>10}", label);
        }
        let _ = writeln!(out);
        for p in &series.points {
            let _ = write!(
                out,
                "{:>6} {:>12.2} {:>10} {:>10}",
                p.n, p.avg_steps, p.max_steps, p.trials
            );
            for (_, f) in &def.envelopes {
                let _ = write!(out, " {:>10.1}", f(p.n as f64));
            }
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(
        out,
        "\nall trials converged: {}   worst max-steps/n: {:.2}",
        data.all_converged(),
        data.worst_steps_per_agent()
    );
    out
}

/// Renders the measured data as CSV with one row per (series, n) pair.
pub fn render_csv(data: &FigureData) -> String {
    let mut out = String::from(
        "figure,series,n,trials,avg_steps,max_steps,min_steps,non_converged,deletions,swaps,purchases\n",
    );
    for series in &data.series {
        for p in &series.points {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.4},{},{},{},{},{},{}",
                data.id,
                series.label.replace(',', ";"),
                p.n,
                p.trials,
                p.avg_steps,
                p.max_steps,
                p.min_steps,
                p.non_converged,
                p.kinds.deletions,
                p.kinds.swaps,
                p.kinds.purchases
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig11;

    #[test]
    fn measure_and_render_a_tiny_figure() {
        let def = fig11().scaled(12, 20, 2);
        let data = FigureData::measure(&def, Some(2));
        assert!(data.all_converged());
        assert!(data.worst_steps_per_agent() < 20.0);
        let table = render_table(&def, &data);
        assert!(table.contains("SUM-GBG"));
        assert!(table.contains("avg steps"));
        assert!(table.contains("7n"));
        let csv = render_csv(&data);
        assert!(csv.lines().count() > 1);
        assert!(csv.starts_with("figure,series,n"));
    }
}
