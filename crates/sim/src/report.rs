//! Rendering of measured figure data as plain-text tables and CSV.

use crate::experiments::FigureDef;
use crate::runner::PointSummary;
use std::fmt::Write as _;

/// Measured data of one series (curve) of a figure.
#[derive(Debug, Clone)]
pub struct SeriesData {
    /// Legend label.
    pub label: String,
    /// One summary per sweep point.
    pub points: Vec<PointSummary>,
}

/// Measured data of one figure.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Figure identifier (`"fig07"`, …).
    pub id: String,
    /// Caption-style title.
    pub title: String,
    /// All measured series.
    pub series: Vec<SeriesData>,
}

impl FigureData {
    /// Runs the figure definition and collects the results.
    pub fn measure(def: &FigureDef, threads: Option<usize>) -> Self {
        let series = def
            .run(threads)
            .into_iter()
            .map(|(label, points)| SeriesData { label, points })
            .collect();
        FigureData {
            id: def.id.to_string(),
            title: def.title.to_string(),
            series,
        }
    }

    /// True if every trial of every point converged (the paper's headline
    /// empirical observation).
    pub fn all_converged(&self) -> bool {
        self.series
            .iter()
            .all(|s| s.points.iter().all(|p| p.non_converged == 0))
    }

    /// The largest observed `max_steps / n` ratio over all series and points —
    /// comparable to the paper's 5n / 7n / 8n envelopes.
    pub fn worst_steps_per_agent(&self) -> f64 {
        self.series
            .iter()
            .flat_map(|s| s.points.iter())
            .map(|p| p.max_steps as f64 / p.n as f64)
            .fold(0.0, f64::max)
    }
}

/// Renders the measured data as a plain-text table: one block per series with the
/// average and maximum steps per `n`, next to the paper's envelopes.
pub fn render_table(def: &FigureDef, data: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} ({})", data.title, data.id);
    let _ = writeln!(out, "{}", "=".repeat(data.title.len() + data.id.len() + 3));
    for series in &data.series {
        let _ = writeln!(out, "\nseries: {}", series.label);
        let _ = write!(
            out,
            "{:>6} {:>12} {:>10} {:>10}",
            "n", "avg steps", "max", "trials"
        );
        for (label, _) in &def.envelopes {
            let _ = write!(out, " {:>10}", label);
        }
        let _ = writeln!(out);
        for p in &series.points {
            let _ = write!(
                out,
                "{:>6} {:>12.2} {:>10} {:>10}",
                p.n, p.avg_steps, p.max_steps, p.trials
            );
            for (_, f) in &def.envelopes {
                let _ = write!(out, " {:>10.1}", f(p.n as f64));
            }
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(
        out,
        "\nall trials converged: {}   worst max-steps/n: {:.2}",
        data.all_converged(),
        data.worst_steps_per_agent()
    );
    out
}

/// Renders the measured data as CSV with one row per (series, n) pair.
pub fn render_csv(data: &FigureData) -> String {
    let mut out = String::from(
        "figure,series,n,trials,avg_steps,max_steps,min_steps,non_converged,deletions,swaps,purchases,strategy_rewrites\n",
    );
    for series in &data.series {
        for p in &series.points {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.4},{},{},{},{},{},{},{}",
                data.id,
                series.label.replace(',', ";"),
                p.n,
                p.trials,
                p.avg_steps,
                p.max_steps,
                p.min_steps,
                p.non_converged,
                p.kinds.deletions,
                p.kinds.swaps,
                p.kinds.purchases,
                p.kinds.strategy_rewrites
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig11;
    use crate::runner::MoveKindCounts;

    /// A fixed two-series figure with hand-picked numbers, for golden tests.
    fn fixture() -> (FigureDef, FigureData) {
        let def = FigureDef {
            id: "figXX",
            title: "Golden fixture",
            series: Vec::new(),
            envelopes: vec![("5n", |n| 5.0 * n)],
        };
        let point = |n: usize, trials, avg, max, min, kinds| PointSummary {
            n,
            trials,
            avg_steps: avg,
            max_steps: max,
            min_steps: min,
            non_converged: 0,
            kinds,
        };
        let data = FigureData {
            id: "figXX".to_string(),
            title: "Golden fixture".to_string(),
            series: vec![
                SeriesData {
                    label: "k=1, max cost".to_string(),
                    points: vec![
                        point(
                            10,
                            4,
                            12.5,
                            20,
                            7,
                            MoveKindCounts {
                                deletions: 3,
                                swaps: 40,
                                purchases: 7,
                                strategy_rewrites: 0,
                            },
                        ),
                        point(
                            20,
                            4,
                            30.25,
                            44,
                            21,
                            MoveKindCounts {
                                deletions: 10,
                                swaps: 100,
                                purchases: 11,
                                strategy_rewrites: 0,
                            },
                        ),
                    ],
                },
                SeriesData {
                    label: "rewrites".to_string(),
                    points: vec![point(
                        10,
                        2,
                        3.0,
                        4,
                        2,
                        MoveKindCounts {
                            deletions: 0,
                            swaps: 0,
                            purchases: 1,
                            strategy_rewrites: 5,
                        },
                    )],
                },
            ],
        };
        (def, data)
    }

    #[test]
    fn golden_plain_text_table() {
        let (def, data) = fixture();
        let expected = "\
Golden fixture (figXX)
======================

series: k=1, max cost
     n    avg steps        max     trials         5n
    10        12.50         20          4       50.0
    20        30.25         44          4      100.0

series: rewrites
     n    avg steps        max     trials         5n
    10         3.00          4          2       50.0

all trials converged: true   worst max-steps/n: 2.20
";
        assert_eq!(render_table(&def, &data), expected);
    }

    #[test]
    fn golden_csv() {
        let (_, data) = fixture();
        let expected = "\
figure,series,n,trials,avg_steps,max_steps,min_steps,non_converged,deletions,swaps,purchases,strategy_rewrites
figXX,k=1; max cost,10,4,12.5000,20,7,0,3,40,7,0
figXX,k=1; max cost,20,4,30.2500,44,21,0,10,100,11,0
figXX,rewrites,10,2,3.0000,4,2,0,0,0,1,5
";
        assert_eq!(render_csv(&data), expected);
    }

    #[test]
    fn csv_escapes_commas_and_counts_rows() {
        let (_, data) = fixture();
        let csv = render_csv(&data);
        assert_eq!(csv.lines().count(), 4, "header + three points");
        assert!(
            !csv.lines().any(|l| l.split(',').count() != 12),
            "every row has exactly the header's 12 columns"
        );
    }

    #[test]
    fn measure_and_render_a_tiny_figure() {
        let def = fig11().scaled(12, 20, 2);
        let data = FigureData::measure(&def, Some(2));
        assert!(data.all_converged());
        assert!(data.worst_steps_per_agent() < 20.0);
        let table = render_table(&def, &data);
        assert!(table.contains("SUM-GBG"));
        assert!(table.contains("avg steps"));
        assert!(table.contains("7n"));
        let csv = render_csv(&data);
        assert!(csv.lines().count() > 1);
        assert!(csv.starts_with("figure,series,n"));
    }
}
