//! The parameter sweeps behind every empirical figure of the paper.
//!
//! Every figure is a family of *series* (one curve per legend entry); every series
//! is a sweep over the number of agents `n`. The paper uses `n = 10, 20, …, 100`
//! with 10,000 trials per configuration for the ASG figures and 5,000 for the GBG
//! figures. Those trial counts take hours on a laptop, so [`FigureDef::scaled`]
//! lets callers trade trials and sweep density for runtime while keeping the shape
//! of the curves; the regeneration binaries in `ncg-bench` expose this on the
//! command line and default to a CI-friendly scale.

use crate::runner::{run_point, PointSummary};
use crate::spec::{AlphaSpec, EngineSpec, ExperimentPoint, GameFamily, InitialTopology};
use ncg_core::policy::Policy;

/// One curve of a figure: a label plus the experiment points of its `n`-sweep.
#[derive(Debug, Clone)]
pub struct SeriesDef {
    /// Legend label, matching the paper (e.g. `"k=2 max cost"`).
    pub label: String,
    /// The sweep points, one per value of `n`.
    pub points: Vec<ExperimentPoint>,
}

/// A reference envelope plotted next to the data: a label and its `f(n)`.
pub type Envelope = (&'static str, fn(f64) -> f64);

/// A full figure: its name, its series and the reference envelopes the paper plots
/// next to the data (e.g. `f(n) = 5n`).
#[derive(Debug, Clone)]
pub struct FigureDef {
    /// Identifier, e.g. `"fig07"`.
    pub id: &'static str,
    /// The caption-style title.
    pub title: &'static str,
    /// The curves.
    pub series: Vec<SeriesDef>,
    /// Reference envelopes as `(label, f(n))` pairs.
    pub envelopes: Vec<Envelope>,
}

impl FigureDef {
    /// Scales the figure for a quicker run: keeps every `n_stride`-th sweep point,
    /// caps `n` at `max_n` and uses `trials` trials per point.
    pub fn scaled(mut self, max_n: usize, n_stride: usize, trials: usize) -> Self {
        for series in &mut self.series {
            series.points.retain(|p| p.n <= max_n);
            let stride = n_stride.max(1);
            series.points = series
                .points
                .iter()
                .enumerate()
                .filter(|(i, _)| i % stride == 0)
                .map(|(_, p)| p.clone())
                .collect();
            for p in &mut series.points {
                p.trials = trials;
            }
        }
        self
    }

    /// Runs every point of every series and returns the summaries in the same
    /// structure. `threads = None` uses all available CPUs.
    pub fn run(&self, threads: Option<usize>) -> Vec<(String, Vec<PointSummary>)> {
        self.series
            .iter()
            .map(|s| {
                let summaries = s.points.iter().map(|p| run_point(p, threads)).collect();
                (s.label.clone(), summaries)
            })
            .collect()
    }
}

/// Values of `n` used by the paper's sweeps.
pub fn paper_n_values() -> Vec<usize> {
    (1..=10).map(|i| i * 10).collect()
}

const PAPER_ASG_TRIALS: usize = 10_000;
const PAPER_GBG_TRIALS: usize = 5_000;
/// Generous step limit (`max_steps = factor · n`); the paper observed convergence
/// within 5n–8n steps.
const STEP_FACTOR: usize = 400;

fn asg_series(family: GameFamily, k: usize, policy: Policy, base_seed: u64) -> SeriesDef {
    let points = paper_n_values()
        .into_iter()
        .map(|n| ExperimentPoint {
            n,
            family,
            alpha: AlphaSpec::Fixed(0.0),
            topology: InitialTopology::Budgeted { k },
            policy,
            trials: PAPER_ASG_TRIALS,
            base_seed: base_seed ^ (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            max_steps_factor: STEP_FACTOR,
            engine: EngineSpec::default(),
        })
        .collect();
    SeriesDef {
        label: format!("k={k} {}", policy.label()),
        points,
    }
}

fn gbg_series(
    family: GameFamily,
    topology: InitialTopology,
    alpha: AlphaSpec,
    policy: Policy,
    base_seed: u64,
) -> SeriesDef {
    let points = paper_n_values()
        .into_iter()
        .map(|n| ExperimentPoint {
            n,
            family,
            alpha,
            topology,
            policy,
            trials: PAPER_GBG_TRIALS,
            base_seed: base_seed ^ (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            max_steps_factor: STEP_FACTOR,
            engine: EngineSpec::default(),
        })
        .collect();
    SeriesDef {
        label: format!(
            "{}, a={}, {}",
            topology.label(),
            alpha.label(),
            policy.label()
        ),
        points,
    }
}

/// Fig. 7: SUM-ASG with budget `k`, both policies, envelope `5n`.
pub fn fig07() -> FigureDef {
    budgeted_figure(
        "fig07",
        "Steps until convergence, SUM-ASG, budget = k",
        GameFamily::AsgSum,
    )
}

/// Fig. 8: MAX-ASG with budget `k`, both policies, envelopes `5n` and `n log n`.
pub fn fig08() -> FigureDef {
    let mut fig = budgeted_figure(
        "fig08",
        "Steps until convergence, MAX-ASG, budget = k",
        GameFamily::AsgMax,
    );
    fig.envelopes.push(("n log n", |n| n * n.log2()));
    fig
}

fn budgeted_figure(id: &'static str, title: &'static str, family: GameFamily) -> FigureDef {
    let budgets = [1usize, 2, 3, 4, 5, 6, 10];
    let mut series = Vec::new();
    for (i, &k) in budgets.iter().enumerate() {
        for (j, policy) in [Policy::MaxCost, Policy::Random].into_iter().enumerate() {
            series.push(asg_series(family, k, policy, 1000 + (i * 2 + j) as u64));
        }
    }
    FigureDef {
        id,
        title,
        series,
        envelopes: vec![("5n", |n| 5.0 * n)],
    }
}

/// Fig. 11: SUM-GBG, `m ∈ {n, 2n, 4n}`, `α ∈ {n/10, n/4, n}`, both policies,
/// envelope `7n`.
pub fn fig11() -> FigureDef {
    gbg_density_figure(
        "fig11",
        "Steps until convergence, SUM-GBG",
        GameFamily::GbgSum,
        7.0,
    )
}

/// Fig. 13: MAX-GBG, as Fig. 11, envelope `8n`.
pub fn fig13() -> FigureDef {
    gbg_density_figure(
        "fig13",
        "Steps until convergence, MAX-GBG",
        GameFamily::GbgMax,
        8.0,
    )
}

fn gbg_density_figure(
    id: &'static str,
    title: &'static str,
    family: GameFamily,
    envelope_factor: f64,
) -> FigureDef {
    let densities = [1usize, 4];
    let alphas = [
        AlphaSpec::FractionOfN(0.1),
        AlphaSpec::FractionOfN(0.25),
        AlphaSpec::FractionOfN(1.0),
    ];
    let mut series = Vec::new();
    let mut seed = 2000u64;
    for &m in &densities {
        for &alpha in &alphas {
            for policy in [Policy::MaxCost, Policy::Random] {
                series.push(gbg_series(
                    family,
                    InitialTopology::RandomEdges { m_per_n: m },
                    alpha,
                    policy,
                    seed,
                ));
                seed += 1;
            }
        }
    }
    let envelopes: Vec<Envelope> = if envelope_factor == 7.0 {
        vec![("7n", |n| 7.0 * n)]
    } else {
        vec![("8n", |n| 8.0 * n)]
    };
    FigureDef {
        id,
        title,
        series,
        envelopes,
    }
}

/// Fig. 12: SUM-GBG starting-topology comparison (`random` / `rl` / `dl`) for
/// `α ∈ {n/10, n/4, n/2, n}`, envelope `3n`.
pub fn fig12() -> FigureDef {
    topology_comparison_figure(
        "fig12",
        "Starting-topology comparison, SUM-GBG",
        GameFamily::GbgSum,
        3.0,
    )
}

/// Fig. 14: MAX-GBG starting-topology comparison, envelope `6n`.
pub fn fig14() -> FigureDef {
    topology_comparison_figure(
        "fig14",
        "Starting-topology comparison, MAX-GBG",
        GameFamily::GbgMax,
        6.0,
    )
}

fn topology_comparison_figure(
    id: &'static str,
    title: &'static str,
    family: GameFamily,
    envelope_factor: f64,
) -> FigureDef {
    let topologies = [
        InitialTopology::RandomEdges { m_per_n: 1 },
        InitialTopology::RandomLine,
        InitialTopology::DirectedLine,
    ];
    let alphas = [
        AlphaSpec::FractionOfN(0.1),
        AlphaSpec::FractionOfN(0.25),
        AlphaSpec::FractionOfN(0.5),
        AlphaSpec::FractionOfN(1.0),
    ];
    let mut series = Vec::new();
    let mut seed = 3000u64;
    for policy in [Policy::MaxCost, Policy::Random] {
        for &topology in &topologies {
            for &alpha in &alphas {
                series.push(gbg_series(family, topology, alpha, policy, seed));
                seed += 1;
            }
        }
    }
    let envelopes: Vec<Envelope> = if envelope_factor == 3.0 {
        vec![("3n", |n| 3.0 * n)]
    } else {
        vec![("6n", |n| 6.0 * n)]
    };
    FigureDef {
        id,
        title,
        series,
        envelopes,
    }
}

/// All empirical figures of the paper.
pub fn all_figures() -> Vec<FigureDef> {
    vec![fig07(), fig08(), fig11(), fig12(), fig13(), fig14()]
}

/// Looks a figure up by its id (`"fig07"`, …, `"fig14"`).
pub fn figure(id: &str) -> Option<FigureDef> {
    all_figures().into_iter().find(|f| f.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_lookup() {
        assert!(figure("fig07").is_some());
        assert!(figure("fig13").is_some());
        assert!(figure("fig99").is_none());
        assert_eq!(all_figures().len(), 6);
    }

    #[test]
    fn figure_definitions_follow_the_paper() {
        let f7 = fig07();
        // 7 budgets × 2 policies.
        assert_eq!(f7.series.len(), 14);
        assert_eq!(f7.series[0].points.len(), 10);
        assert_eq!(f7.series[0].points[0].n, 10);
        assert_eq!(f7.series[0].points[9].n, 100);
        assert_eq!(f7.series[0].points[0].trials, 10_000);
        let f11 = fig11();
        assert_eq!(f11.series[0].points[0].trials, 5_000);
        let f12 = fig12();
        assert_eq!(f12.series.len(), 2 * 3 * 4);
    }

    #[test]
    fn scaling_reduces_work() {
        let f = fig07().scaled(40, 2, 5);
        for s in &f.series {
            assert!(s.points.iter().all(|p| p.n <= 40 && p.trials == 5));
            assert_eq!(s.points.len(), 2, "n = 10 and n = 30 survive the stride");
        }
    }

    #[test]
    fn tiny_run_of_fig07_converges_everywhere() {
        let f = fig07().scaled(12, 10, 2);
        let results = f.run(Some(2));
        assert_eq!(results.len(), f.series.len());
        for (label, summaries) in &results {
            for s in summaries {
                assert_eq!(s.non_converged, 0, "series {label} must converge");
            }
        }
    }
}
