//! # selfish-ncg
//!
//! Facade crate of the *On Dynamics in Selfish Network Creation* reproduction.
//! Re-exports the workspace crates so that examples and downstream users only need
//! a single dependency:
//!
//! * [`graph`] (`ncg-graph`) — owned graphs, distances, generators, host graphs,
//! * [`core`] (`ncg-core`) — games, costs, move policies, dynamics engine,
//! * [`instances`] (`ncg-instances`) — every constructed instance from the paper,
//! * [`sim`] (`ncg-sim`) — the empirical-study harness (Fig. 7–14),
//! * [`lab`] (`ncg-lab`) — the scenario catalog and the batch orchestrator
//!   (streaming stats, checkpoint/resume),
//! * [`trace`] (`ncg-trace`) — the zero-overhead-when-off instrumentation
//!   layer (phase spans, counters, flame profiles).

#![forbid(unsafe_code)]

pub use ncg_core as core;
pub use ncg_graph as graph;
pub use ncg_instances as instances;
pub use ncg_lab as lab;
pub use ncg_sim as sim;
pub use ncg_trace as trace;

/// Convenient prelude importing the most frequently used items.
pub mod prelude {
    pub use ncg_core::{
        dynamics::{run_dynamics, Dynamics, DynamicsConfig, Termination},
        games::{AsymSwapGame, BilateralBuyGame, BuyGame, GreedyBuyGame, SwapGame},
        policy::{Policy, TieBreak},
        DistanceMetric, Game, Workspace,
    };
    pub use ncg_graph::{generators, HostGraph, OwnedGraph};
}
