//! Overlay-network formation — the motivating scenario of the paper's introduction.
//!
//! Selfish peers of a peer-to-peer overlay repeatedly rewire their connections to
//! improve their own latency (distance-cost) versus link-maintenance cost. The
//! example compares, for growing network sizes, how many uncoordinated improving
//! moves the swarm needs before the overlay stabilises, under the two move
//! policies studied in the paper, and how far the resulting social cost is from
//! the star-shaped social optimum (the price of building the network selfishly).
//!
//! Run with: `cargo run --release --example overlay_formation`

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfish_ncg::core::{equilibrium, DynamicsConfig};
use selfish_ncg::prelude::*;

fn social_optimum_cost(n: usize, alpha: f64) -> f64 {
    // For α in the paper's regime a star minimises social cost: n-1 edges plus
    // distance-cost (n-1) for the centre and 1 + 2(n-2) for each leaf.
    alpha * (n - 1) as f64 + (n - 1) as f64 + (n - 1) as f64 * (1.0 + 2.0 * (n - 2) as f64)
}

fn main() {
    println!(
        "{:>4} {:>10} {:>10} {:>12} {:>18}",
        "n", "policy", "moves", "moves / n", "cost vs optimum"
    );
    for &n in &[10usize, 20, 40, 60] {
        let alpha = n as f64 / 4.0;
        for policy in [Policy::MaxCost, Policy::Random] {
            let mut rng = StdRng::seed_from_u64(7 + n as u64);
            let initial = generators::random_with_m_edges(n, 2 * n, &mut rng);
            let game = GreedyBuyGame::sum(alpha);
            let config = DynamicsConfig::simulation(200 * n).with_policy(policy);
            let outcome = run_dynamics(&game, &initial, &config, &mut rng);
            assert!(outcome.converged(), "the overlay must stabilise");
            let mut ws = Workspace::new(n);
            let cost = equilibrium::social_cost(&game, &outcome.final_graph, &mut ws);
            let ratio = cost / social_optimum_cost(n, alpha);
            println!(
                "{:>4} {:>10} {:>10} {:>12.2} {:>17.3}x",
                n,
                policy.label(),
                outcome.steps,
                outcome.steps as f64 / n as f64,
                ratio
            );
        }
    }
    println!(
        "\nThe overlay stabilises after a small constant number of moves per peer \
         (the paper's O(n) observation), and the stable overlay's social cost stays \
         close to the optimum (low price of anarchy)."
    );
}
