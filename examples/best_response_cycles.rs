//! The dark side: best-response cycles and non-convergence (Theorems 3.7 and 4.1).
//!
//! This example replays the paper's constructed instances where selfish improving
//! moves never settle down:
//!
//! * Fig. 5 — the SUM Asymmetric Swap Game on a network where every agent owns
//!   exactly one edge (a single non-tree edge!) cycles forever,
//! * Fig. 9 / Fig. 10 — the SUM and MAX (Greedy) Buy Game cycle even when every
//!   agent plays optimally,
//!
//! and then lets the dynamics engine rediscover the recurrence through its exact
//! state hashing.
//!
//! Run with: `cargo run --release --example best_response_cycles`

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfish_ncg::core::dynamics::{Dynamics, DynamicsConfig, Termination};
use selfish_ncg::core::Game;
use selfish_ncg::instances::{fig05, fig09, fig10, CycleInstance};

fn show<G: Game>(title: &str, instance: &CycleInstance<G>) {
    println!("== {title} ==  [{}]", instance.game.name());
    let states = instance.verify().expect("the paper's cycle must verify");
    for (i, step) in instance.steps.iter().enumerate() {
        println!("  {}. {}", i + 1, step.description);
    }
    println!(
        "  after {} best responses the network is exactly the initial one again.\n",
        states.len() - 1
    );
}

fn detect_cycle_with_engine() {
    // Drive the Fig. 5 instance with the engine: force the paper's movers and let
    // exact state hashing detect the recurrence.
    let instance = fig05::cycle();
    let config = DynamicsConfig::analysis(100);
    let mut dynamics = Dynamics::new(&instance.game, instance.initial.clone(), config);
    let mut rng = StdRng::seed_from_u64(0);
    let mut seen = std::collections::HashSet::new();
    seen.insert(selfish_ncg::graph::canonical_state_key(dynamics.graph()));
    let mut revisited = false;
    'outer: for round in 0..3 {
        for step in &instance.steps {
            dynamics
                .step_with_agent(step.agent, &mut rng)
                .expect("prescribed mover must be unhappy");
            if !seen.insert(selfish_ncg::graph::canonical_state_key(dynamics.graph())) {
                println!(
                    "engine revisited a known state after {} moves (round {})",
                    dynamics.steps(),
                    round + 1
                );
                revisited = true;
                break 'outer;
            }
        }
    }
    assert!(revisited, "the better-response cycle must be detected");

    // The same instance under automatic best-response dynamics with cycle
    // detection enabled either reports the cycle or converges through moves
    // outside the constructed schedule — both are legitimate outcomes of
    // uncoordinated play; the constructed schedule above is what the theorem
    // is about.
    let config = DynamicsConfig::analysis(10_000);
    let outcome = Dynamics::new(&instance.game, instance.initial.clone(), config).run(&mut rng);
    match outcome.termination {
        Termination::CycleDetected {
            first_seen_step,
            period,
        } => println!(
            "automatic dynamics detected a cycle of period {period} first seen at step {first_seen_step}"
        ),
        Termination::Converged => println!(
            "automatic dynamics (different movers) happened to converge after {} moves",
            outcome.steps
        ),
        Termination::StepLimit => println!("automatic dynamics hit the step limit"),
    }
}

fn main() {
    show(
        "Fig. 5 — one non-tree edge destroys convergence (Thm 3.7)",
        &fig05::cycle(),
    );
    show(
        "Fig. 9 — SUM Greedy Buy Game cycle (Thm 4.1)",
        &fig09::greedy_buy_game_cycle(),
    );
    show(
        "Fig. 10 — MAX Greedy Buy Game cycle (Thm 4.1)",
        &fig10::greedy_buy_game_cycle(),
    );
    detect_cycle_with_engine();
}
