//! Probe: per-engine oracle work counters on the SUM-GBG ablation workload,
//! for diagnosing where the persistent+dirty engine spends its time at small
//! `n` (the `BENCH_oracle.json` n = 64 anomaly), plus a traced trial per
//! family rendered as a text flame profile (`ncg-trace` phase tree).
//!
//! ```text
//! cargo run --release --example oracle_probe -- 64 128
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfish_ncg::core::dynamics::{Dynamics, DynamicsConfig, ResponseMode};
use selfish_ncg::core::policy::{Policy, TieBreak};
use selfish_ncg::core::{GreedyBuyGame, OracleKind};
use selfish_ncg::graph::generators;
use selfish_ncg::trace;

fn run(n: usize, family: &str, oracle: OracleKind, dirty: bool, warm: bool, batch: bool) {
    use selfish_ncg::core::{AsymSwapGame, Game};
    let mut rng = StdRng::seed_from_u64(42);
    let (game, g): (Box<dyn Game>, _) = match family {
        "asg" => (
            Box::new(AsymSwapGame::sum()),
            generators::budgeted_random(n, 2, &mut rng),
        ),
        _ => (
            Box::new(GreedyBuyGame::sum(n as f64 / 4.0)),
            generators::random_with_m_edges(n, 2 * n, &mut rng),
        ),
    };
    let game = game.as_ref();
    let config = DynamicsConfig {
        policy: Policy::MaxCost,
        tie_break: TieBreak::Random,
        response_mode: ResponseMode::BestResponse,
        max_steps: 400 * n,
        detect_cycles: false,
        record_trajectory: false,
        ownership_in_state: true,
        oracle,
        oracle_cache_budget: None,
        oracle_byte_budget: None,
        dirty_agents: dirty,
        warm_parked: warm,
        warm_batching: batch,
    };
    let mut dynamics = Dynamics::new(game, g, config);
    let watch = trace::Stopwatch::start();
    let mut steps = 0usize;
    while dynamics.step(&mut rng).is_some() {
        steps += 1;
    }
    let secs = watch.elapsed_secs();
    let stats = dynamics.oracle_stats();
    println!(
        "n={n:>4} {family} {:<12} dirty={dirty:<5} warm={warm:<5} batch={batch:<5} {secs:>8.3}s steps={steps:>5} bfs={:>7} replays={:>7} lazy={:>7} bumps={:>8} hits={:>7} evals={:>8} expanded={:>10} csr_patch={:>6} csr_rebuild={:>6} batched={:>6} peak_parked={:>9}B widths={:?}",
        oracle.label(),
        stats.full_bfs_runs,
        stats.replayed_begins,
        stats.lazy_replays,
        stats.warm_bumps,
        stats.lazy_hits,
        stats.evaluations,
        stats.nodes_expanded,
        stats.csr_patches,
        stats.csr_rebuilds,
        stats.batched_repins,
        stats.peak_parked_bytes,
        stats.warm_batch_width,
    );
}

/// One fully traced trial of the eager persistent engine, rendered as a text
/// flame profile: every `ncg-trace` phase (cost-refresh, scan, apply, the
/// oracle's begin/replay/wave/kernel leaves) nests under the trial span, and
/// the leaf-coverage line reports how much of the trial's wall-clock the leaf
/// phases account for.
fn phases(n: usize, family: &str) {
    use selfish_ncg::core::{AsymSwapGame, Game};
    use selfish_ncg::sim::{run_dynamics_trial_probed, EngineSpec};
    let mut rng = StdRng::seed_from_u64(42);
    let (game, g): (Box<dyn Game + Send + Sync>, _) = match family {
        "asg" => (
            Box::new(AsymSwapGame::sum()),
            generators::budgeted_random(n, 2, &mut rng),
        ),
        _ => (
            Box::new(GreedyBuyGame::sum(n as f64 / 4.0)),
            generators::random_with_m_edges(n, 2 * n, &mut rng),
        ),
    };
    trace::set_enabled(true);
    let _ = trace::take_report(); // drop anything earlier probes recorded
    let watch = trace::Stopwatch::start();
    let (result, stats) = run_dynamics_trial_probed(
        game.as_ref(),
        g,
        Policy::MaxCost,
        EngineSpec::persistent(),
        400 * n,
        &mut rng,
    );
    let wall_ns = watch.elapsed_ns();
    trace::set_enabled(false);
    let report = trace::take_report();
    println!(
        "n={n:>4} {family} traced trial: steps={} converged={} wall={:.3}s",
        result.steps,
        result.converged,
        wall_ns as f64 / 1e9,
    );
    print!("{}", report.render_flame());
    let leaf_ns = (report.leaf_coverage() * report.total_ns() as f64) as u64;
    println!(
        "leaf coverage: {:.1}% of the span tree, {:.1}% of wall-clock",
        report.leaf_coverage() * 100.0,
        leaf_ns as f64 / wall_ns.max(1) as f64 * 100.0,
    );
    match report.wasted_scan_ratio() {
        Some(ratio) => println!(
            "wasted-scan ratio: {ratio:.1} agents scanned per improving move ({} scanned / {} improving)",
            report.counter(trace::Counter::AgentsScanned),
            report.counter(trace::Counter::ImprovingMoves),
        ),
        None => println!("wasted-scan ratio: n/a (no improving moves recorded)"),
    }
    println!("oracle stats: {stats:?}");
}

fn main() {
    let ns: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let ns = if ns.is_empty() { vec![64] } else { ns };
    for &n in &ns {
        for family in ["gbg", "asg"] {
            for (oracle, dirty, warm, batch) in [
                (OracleKind::Incremental, true, false, true),
                (OracleKind::Persistent, false, false, true),
                (OracleKind::Persistent, true, false, true),
                (OracleKind::Persistent, true, true, false),
                (OracleKind::Persistent, true, true, true),
            ] {
                run(n, family, oracle, dirty, warm, batch);
            }
        }
        phases(n, "gbg");
        phases(n, "asg");
    }
}
