//! Probe: per-engine oracle work counters on the SUM-GBG ablation workload,
//! for diagnosing where the persistent+dirty engine spends its time at small
//! `n` (the `BENCH_oracle.json` n = 64 anomaly).
//!
//! ```text
//! cargo run --release --example oracle_probe -- 64 128
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfish_ncg::core::dynamics::{Dynamics, DynamicsConfig, ResponseMode};
use selfish_ncg::core::policy::{Policy, TieBreak};
use selfish_ncg::core::{GreedyBuyGame, OracleKind};
use selfish_ncg::graph::generators;
use std::time::Instant;

fn run(n: usize, family: &str, oracle: OracleKind, dirty: bool, warm: bool, batch: bool) {
    use selfish_ncg::core::{AsymSwapGame, Game};
    let mut rng = StdRng::seed_from_u64(42);
    let (game, g): (Box<dyn Game>, _) = match family {
        "asg" => (
            Box::new(AsymSwapGame::sum()),
            generators::budgeted_random(n, 2, &mut rng),
        ),
        _ => (
            Box::new(GreedyBuyGame::sum(n as f64 / 4.0)),
            generators::random_with_m_edges(n, 2 * n, &mut rng),
        ),
    };
    let game = game.as_ref();
    let config = DynamicsConfig {
        policy: Policy::MaxCost,
        tie_break: TieBreak::Random,
        response_mode: ResponseMode::BestResponse,
        max_steps: 400 * n,
        detect_cycles: false,
        record_trajectory: false,
        ownership_in_state: true,
        oracle,
        oracle_cache_budget: None,
        oracle_byte_budget: None,
        dirty_agents: dirty,
        warm_parked: warm,
        warm_batching: batch,
    };
    let mut dynamics = Dynamics::new(game, g, config);
    let start = Instant::now();
    let mut steps = 0usize;
    while dynamics.step(&mut rng).is_some() {
        steps += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = dynamics.oracle_stats();
    println!(
        "n={n:>4} {family} {:<12} dirty={dirty:<5} warm={warm:<5} batch={batch:<5} {secs:>8.3}s steps={steps:>5} bfs={:>7} replays={:>7} lazy={:>7} bumps={:>8} hits={:>7} evals={:>8} expanded={:>10} csr_patch={:>6} csr_rebuild={:>6} batched={:>6} peak_parked={:>9}B widths={:?}",
        oracle.label(),
        stats.full_bfs_runs,
        stats.replayed_begins,
        stats.lazy_replays,
        stats.warm_bumps,
        stats.lazy_hits,
        stats.evaluations,
        stats.nodes_expanded,
        stats.csr_patches,
        stats.csr_rebuilds,
        stats.batched_repins,
        stats.peak_parked_bytes,
        stats.warm_batch_width,
    );
}

/// Phase split of the eager persistent engine: reimplements the max-cost
/// step loop with separate timers for the per-agent cost refresh, the
/// unhappiness scan, and the mover's best-response + apply.
fn phases(n: usize, family: &str) {
    use selfish_ncg::core::game::workspace_cost;
    use selfish_ncg::core::moves::apply_move;
    use selfish_ncg::core::{AsymSwapGame, Game, Workspace};
    let mut rng = StdRng::seed_from_u64(42);
    let (game, mut g): (Box<dyn Game>, _) = match family {
        "asg" => (
            Box::new(AsymSwapGame::sum()),
            generators::budgeted_random(n, 2, &mut rng),
        ),
        _ => (
            Box::new(GreedyBuyGame::sum(n as f64 / 4.0)),
            generators::random_with_m_edges(n, 2 * n, &mut rng),
        ),
    };
    let game = game.as_ref();
    let mut ws = Workspace::with_oracle(n, OracleKind::Persistent);
    let (mut t_cost, mut t_find, mut t_resp) = (0.0f64, 0.0f64, 0.0f64);
    let mut steps = 0usize;
    let mut scanned = 0usize;
    loop {
        let t0 = Instant::now();
        let mut order: Vec<usize> = (0..n).collect();
        let costs: Vec<f64> = (0..n)
            .map(|u| workspace_cost(game, &g, u, &mut ws))
            .collect();
        order.sort_by(|&a, &b| costs[b].partial_cmp(&costs[a]).unwrap());
        let t1 = Instant::now();
        let mut mover = None;
        for &u in &order {
            scanned += 1;
            if game.has_improving_move(&g, u, &mut ws) {
                mover = Some(u);
                break;
            }
        }
        let t2 = Instant::now();
        t_cost += (t1 - t0).as_secs_f64();
        t_find += (t2 - t1).as_secs_f64();
        let Some(u) = mover else { break };
        let br = game.best_response(&g, u, &mut ws).expect("unhappy");
        apply_move(&mut g, u, &br.mv).expect("applies");
        let _ = &game;
        t_resp += t2.elapsed().as_secs_f64();
        steps += 1;
        if steps > 400 * n {
            break;
        }
    }
    println!(
        "n={n:>4} {family} phases: steps={steps} scanned/step={:.1} cost={t_cost:.3}s find={t_find:.3}s resp={t_resp:.3}s stats={:?}",
        scanned as f64 / steps.max(1) as f64,
        ws.oracle_stats()
    );
}

fn main() {
    let ns: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let ns = if ns.is_empty() { vec![64] } else { ns };
    for &n in &ns {
        for family in ["gbg", "asg"] {
            for (oracle, dirty, warm, batch) in [
                (OracleKind::Incremental, true, false, true),
                (OracleKind::Persistent, false, false, true),
                (OracleKind::Persistent, true, false, true),
                (OracleKind::Persistent, true, true, false),
                (OracleKind::Persistent, true, true, true),
            ] {
                run(n, family, oracle, dirty, warm, batch);
            }
        }
        phases(n, "gbg");
        phases(n, "asg");
    }
}
