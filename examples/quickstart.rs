//! Quickstart: run selfish network creation dynamics on a random network.
//!
//! Twenty agents start from a random connected network with 40 edges and play the
//! SUM Greedy Buy Game (buy / delete / swap one edge per move) under the max cost
//! policy until nobody wants to change anything. The example prints the trajectory
//! summary, the final network and its social cost compared to the initial one.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfish_ncg::core::{equilibrium, DynamicsConfig};
use selfish_ncg::prelude::*;

fn main() {
    let n = 20;
    let alpha = n as f64 / 4.0;
    let mut rng = StdRng::seed_from_u64(2013);

    // 1. A random connected initial network with 2n edges (as in the paper's §4.2.1).
    let initial = generators::random_with_m_edges(n, 2 * n, &mut rng);
    println!(
        "initial network: {} agents, {} edges, diameter {:?}",
        initial.num_nodes(),
        initial.num_edges(),
        selfish_ncg::graph::diameter(&initial)
    );

    // 2. The game: SUM Greedy Buy Game with edge price α = n/4.
    let game = GreedyBuyGame::sum(alpha);
    let mut ws = Workspace::new(n);
    let initial_social_cost = equilibrium::social_cost(&game, &initial, &mut ws);

    // 3. Run best-response dynamics under the max cost policy.
    let mut config = DynamicsConfig::simulation(100 * n).with_policy(Policy::MaxCost);
    config.record_trajectory = true;
    let outcome = run_dynamics(&game, &initial, &config, &mut rng);

    println!(
        "dynamics: {} ({} moves)",
        if outcome.converged() {
            "converged to a stable network"
        } else {
            "step limit reached"
        },
        outcome.steps
    );
    let (mut deletions, mut swaps, mut buys) = (0, 0, 0);
    for rec in &outcome.trajectory {
        match rec.mv {
            selfish_ncg::core::Move::Delete { .. } => deletions += 1,
            selfish_ncg::core::Move::Swap { .. } => swaps += 1,
            selfish_ncg::core::Move::Buy { .. } => buys += 1,
            _ => {}
        }
    }
    println!("moves: {deletions} deletions, {swaps} swaps, {buys} purchases");

    // 4. Inspect the stable network.
    let stable = &outcome.final_graph;
    let final_social_cost = equilibrium::social_cost(&game, stable, &mut ws);
    println!(
        "stable network: {} edges, diameter {:?}",
        stable.num_edges(),
        selfish_ncg::graph::diameter(stable)
    );
    println!(
        "social cost: {initial_social_cost:.1} -> {final_social_cost:.1} \
         (steps per agent: {:.2})",
        outcome.steps as f64 / n as f64
    );
    assert!(equilibrium::is_stable(&game, stable, &mut ws));
}
