//! Move-policy comparison on trees — Theorem 2.1 vs. Theorem 2.11 in action.
//!
//! The MAX Swap Game on a tree always converges (it is a generalized ordinal
//! potential game), but the *speed* depends on who is allowed to move: an
//! arbitrary schedule is only bounded by O(n³) while the max cost policy needs
//! just Θ(n log n) moves. This example measures the number of moves on the path
//! P_n for the max cost, random, and min-index policies and prints them next to
//! the analytic yardsticks.
//!
//! Run with: `cargo run --release --example policy_comparison`

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfish_ncg::core::DynamicsConfig;
use selfish_ncg::instances::paths;
use selfish_ncg::prelude::*;

fn measure(policy: Policy, n: usize, seed: u64) -> usize {
    let game = SwapGame::max();
    let initial = paths::figure1_path(n);
    let config = DynamicsConfig::simulation(10 * n * n * n).with_policy(policy);
    let mut rng = StdRng::seed_from_u64(seed);
    let outcome = run_dynamics(&game, &initial, &config, &mut rng);
    assert!(
        outcome.converged(),
        "MAX-SG on trees is a poly-FIPG (Thm 2.1)"
    );
    outcome.steps
}

fn main() {
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "n", "max cost", "random", "min index", "n log2 n", "n^2"
    );
    for &n in &[9usize, 17, 33, 65] {
        let max_cost = measure(Policy::MaxCost, n, 1);
        let random = measure(Policy::Random, n, 2);
        let min_index = measure(Policy::MinIndex, n, 3);
        println!(
            "{:>5} {:>10} {:>10} {:>10} {:>12.1} {:>10}",
            n,
            max_cost,
            random,
            min_index,
            (n as f64) * (n as f64).log2(),
            n * n
        );
    }
    println!(
        "\nEvery schedule converges (Theorem 2.1), and the max cost policy stays in \
         the Θ(n log n) regime of Theorem 2.11, clearly below n²."
    );
}
