//! Integration tests for the negative results: the best-response cycles of
//! Theorem 3.7 (Fig. 5) and Theorem 4.1 (Fig. 9 / Fig. 10), and the host-graph
//! explorations of Corollary 4.2.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfish_ncg::core::classify::{explore, ExploreConfig};
use selfish_ncg::core::moves::apply_move;
use selfish_ncg::core::{run_dynamics, DynamicsConfig, Game, OracleKind, Workspace};
use selfish_ncg::instances::{fig05, fig09, fig10, hosts, CycleInstance};

#[test]
fn fig5_uniform_budget_cycle_verifies_and_is_minimal() {
    let inst = fig05::cycle();
    // Every agent owns exactly one edge: n vertices, n edges, one non-tree edge.
    assert_eq!(inst.initial.num_edges(), inst.initial.num_nodes());
    let states = inst.verify().expect("Fig. 5 cycle");
    assert_eq!(states.len(), 5);
    // The cycle revisits no intermediate state.
    for i in 0..4 {
        for j in (i + 1)..4 {
            assert_ne!(states[i], states[j], "states {i} and {j} must differ");
        }
    }
}

#[test]
fn fig9_cycle_verifies_for_buy_and_greedy_buy_game() {
    fig09::greedy_buy_game_cycle()
        .verify()
        .expect("SUM-GBG cycle");
    fig09::buy_game_cycle().verify().expect("SUM-BG cycle");
    // The cycle also survives the move restriction to the Cor. 4.2 host graph.
    fig09::host_restricted_cycle().verify().expect("host cycle");
}

#[test]
fn fig10_cycle_verifies_for_buy_and_greedy_buy_game() {
    fig10::greedy_buy_game_cycle()
        .verify()
        .expect("MAX-GBG cycle");
    fig10::buy_game_cycle().verify().expect("MAX-BG cycle");
    fig10::host_restricted_cycle().verify().expect("host cycle");
}

#[test]
fn buy_game_cycles_imply_not_fip_via_state_exploration() {
    // Exploring the best-response state graph from the Fig. 9 initial network on
    // the restricted host shows a reachable directed cycle, i.e. the game does not
    // have the finite improvement property on this instance.
    let (game, initial) = hosts::sum_gbg_on_host();
    let result = explore(
        &game,
        &initial,
        &ExploreConfig::default().with_max_states(20_000),
    );
    assert!(result.complete);
    assert!(
        result.has_cycle(),
        "a best-response cycle must be reachable"
    );

    let (game, initial) = hosts::max_gbg_on_host();
    let result = explore(
        &game,
        &initial,
        &ExploreConfig::default().with_max_states(20_000),
    );
    assert!(result.complete);
    assert!(result.has_cycle());
}

#[test]
fn cycle_movers_strictly_improve_and_nobody_loses_the_prescribed_amounts() {
    // Along the Fig. 9 cycle, every prescribed move strictly improves the mover by
    // the amounts stated in the paper's proof.
    let inst = fig09::greedy_buy_game_cycle();
    let states = inst.verify().unwrap();
    let mut ws = Workspace::new(inst.initial.num_nodes());
    let expected_gains = [
        6.0,
        8.0 - fig09::ALPHA,
        fig09::ALPHA - 7.0,
        6.0,
        8.0 - fig09::ALPHA,
        fig09::ALPHA - 7.0,
    ];
    for (i, step) in inst.steps.iter().enumerate() {
        let before = inst.game.cost(&states[i], step.agent, &mut ws.bfs);
        let after = inst.game.cost(&states[i + 1], step.agent, &mut ws.bfs);
        let gain = before - after;
        assert!(
            (gain - expected_gains[i]).abs() < 1e-9,
            "step {i}: gain {gain} != expected {}",
            expected_gains[i]
        );
    }
}

/// At every state of the known best-response cycles, the full-BFS,
/// incremental and persistent engines must agree on the complete improving-
/// move list and the best response of the prescribed mover. Two full rounds
/// are walked on one mutated-in-place graph, so the persistent workspaces
/// carry their distance vectors across the cycle's state revisits (including
/// the `SetOwned` whole-strategy moves of the Buy-Game cycles).
#[test]
fn cycle_instances_scan_identically_under_all_engines() {
    fn check<G: Game>(inst: &CycleInstance<G>, label: &str) {
        let n = inst.initial.num_nodes();
        let mut ws_full = Workspace::with_oracle(n, OracleKind::FullBfs);
        let mut ws_inc = Workspace::with_oracle(n, OracleKind::Incremental);
        let mut ws_pers = Workspace::with_oracle(n, OracleKind::Persistent);
        let mut g = inst.initial.clone();
        for round in 0..2 {
            for (i, step) in inst.steps.iter().enumerate() {
                let ctx = format!("{label} round {round} step {i}");
                let full = inst.game.improving_moves(&g, step.agent, &mut ws_full);
                let inc = inst.game.improving_moves(&g, step.agent, &mut ws_inc);
                let pers = inst.game.improving_moves(&g, step.agent, &mut ws_pers);
                assert!(!full.is_empty(), "{ctx}: prescribed mover is unhappy");
                assert_eq!(full, inc, "{ctx}");
                assert_eq!(full, pers, "{ctx}");
                let bf = inst.game.best_response(&g, step.agent, &mut ws_full);
                let bp = inst.game.best_response(&g, step.agent, &mut ws_pers);
                assert_eq!(bf, bp, "{ctx}");
                apply_move(&mut g, step.agent, &step.mv).expect("prescribed move applies");
            }
            assert_eq!(g, inst.initial, "{label}: the cycle closes");
        }
    }
    check(&fig05::cycle(), "fig5 SUM-ASG");
    check(&fig09::greedy_buy_game_cycle(), "fig9 SUM-GBG");
    check(&fig09::buy_game_cycle(), "fig9 SUM-BG");
    check(&fig10::greedy_buy_game_cycle(), "fig10 MAX-GBG");
    check(&fig10::buy_game_cycle(), "fig10 MAX-BG");
}

/// Convergence regression on the cycle instances: free-running dynamics from
/// the cycle's initial network (deterministic analysis config, exact cycle
/// detection) must behave *identically* under all three engines — same
/// termination, same recorded move sequence, same final network.
#[test]
fn cycle_instance_dynamics_identical_across_engines() {
    fn check<G: Game>(game: &G, initial: &selfish_ncg::graph::OwnedGraph, label: &str) {
        let run = |oracle: OracleKind| {
            let mut cfg = DynamicsConfig::analysis(200);
            cfg.oracle = oracle;
            let mut rng = StdRng::seed_from_u64(7);
            run_dynamics(game, initial, &cfg, &mut rng)
        };
        let reference = run(OracleKind::FullBfs);
        for oracle in [OracleKind::Incremental, OracleKind::Persistent] {
            let out = run(oracle);
            assert_eq!(
                out.termination,
                reference.termination,
                "{label} {}",
                oracle.label()
            );
            assert_eq!(
                out.trajectory,
                reference.trajectory,
                "{label} {}",
                oracle.label()
            );
            assert_eq!(
                out.final_graph,
                reference.final_graph,
                "{label} {}",
                oracle.label()
            );
        }
    }
    let inst = fig05::cycle();
    check(&inst.game, &inst.initial, "fig5");
    let inst = fig09::greedy_buy_game_cycle();
    check(&inst.game, &inst.initial, "fig9 GBG");
    let inst = fig10::greedy_buy_game_cycle();
    check(&inst.game, &inst.initial, "fig10 GBG");
}

#[test]
fn swap_game_cycles_do_not_exist_on_trees() {
    // Contrast: the explorer finds no cycle for the ASG restricted to small trees
    // (Corollary 3.1 — the game is a potential game there).
    use selfish_ncg::prelude::*;
    let game = AsymSwapGame::sum();
    let tree = generators::path(6);
    let result = explore(
        &game,
        &tree,
        &ExploreConfig::default().with_max_states(50_000),
    );
    assert!(result.complete);
    assert!(!result.has_cycle());
    assert!(result.every_state_reaches_stable());
}
