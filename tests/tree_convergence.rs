//! Integration tests for the positive results on trees:
//! Theorem 2.1 / 2.11 (MAX-SG) and Corollaries 3.1 / 3.2 (ASG).

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfish_ncg::core::potential::{lex_decreased, sorted_cost_vector};
use selfish_ncg::core::{equilibrium, Dynamics, DynamicsConfig};
use selfish_ncg::graph::properties;
use selfish_ncg::instances::paths;
use selfish_ncg::prelude::*;

/// Theorem 2.1: the MAX-SG on trees converges, and the sorted cost vector is a
/// generalized ordinal potential along every trajectory.
#[test]
fn max_swap_game_on_random_trees_is_a_potential_game() {
    let game = SwapGame::max();
    let mut rng = StdRng::seed_from_u64(21);
    for trial in 0..10 {
        let n = 8 + trial;
        let tree = generators::random_spanning_tree(n, None, &mut rng);
        let mut dynamics = Dynamics::new(
            &game,
            tree,
            DynamicsConfig::simulation(n * n * n).with_policy(Policy::Random),
        );
        let mut ws = Workspace::new(n);
        let mut prev = sorted_cost_vector(&game, dynamics.graph(), &mut ws);
        let mut steps = 0;
        while dynamics.step(&mut rng).is_some() {
            assert!(
                properties::is_tree(dynamics.graph()),
                "swaps keep trees trees"
            );
            let next = sorted_cost_vector(&game, dynamics.graph(), &mut ws);
            assert!(
                lex_decreased(&prev, &next),
                "Lemma 2.6 potential must decrease"
            );
            prev = next;
            steps += 1;
            assert!(steps <= n * n * n, "Theorem 2.1: at most O(n^3) moves");
        }
        // Stable MAX-SG trees are stars or double stars (diameter <= 3).
        assert!(properties::is_star_or_double_star(dynamics.graph()));
    }
}

/// Theorem 2.11: the max cost policy converges in Θ(n log n) moves on paths —
/// well below the n²-regime — and ends in a star / double star.
#[test]
fn max_cost_policy_speed_up_on_paths() {
    let game = SwapGame::max();
    let mut rng = StdRng::seed_from_u64(5);
    for &n in &[17usize, 33, 49] {
        let cfg = DynamicsConfig::simulation(n * n * n)
            .with_policy(Policy::MaxCost)
            .with_tie_break(TieBreak::Deterministic);
        let out = run_dynamics(&game, &paths::figure1_path(n), &cfg, &mut rng);
        assert!(out.converged());
        let bound = 4.0 * (n as f64) * (n as f64).log2();
        assert!(
            (out.steps as f64) < bound,
            "n={n}: {} steps exceeds the Θ(n log n) regime ({bound:.0})",
            out.steps
        );
        assert!(
            out.steps as f64 >= paths::lemma_2_14_lower_bound(n) * 0.5,
            "n={n}: suspiciously few steps"
        );
        assert!(properties::is_star_or_double_star(&out.final_graph));
    }
}

/// Observation 2.12: under the max cost policy on trees, every mover is a leaf.
#[test]
fn max_cost_movers_on_trees_are_leaves() {
    let game = SwapGame::max();
    let mut rng = StdRng::seed_from_u64(8);
    let n = 20;
    let tree = generators::random_spanning_tree(n, None, &mut rng);
    let mut dynamics = Dynamics::new(
        &game,
        tree,
        DynamicsConfig::simulation(10_000).with_policy(Policy::MaxCost),
    );
    loop {
        let degree_before: Vec<usize> = (0..n).map(|v| dynamics.graph().degree(v)).collect();
        match dynamics.step(&mut rng) {
            Some(record) => assert_eq!(
                degree_before[record.agent], 1,
                "max-cost mover must be a leaf"
            ),
            None => break,
        }
    }
}

/// Corollary 3.1: the SUM-ASG and MAX-ASG on trees converge for any policy.
#[test]
fn asymmetric_swap_games_on_trees_converge() {
    let mut rng = StdRng::seed_from_u64(77);
    for trial in 0..6 {
        let n = 10 + 2 * trial;
        let tree = generators::random_spanning_tree(n, Some(1), &mut rng);
        for policy in [Policy::MaxCost, Policy::Random, Policy::MinIndex] {
            let sum_out = run_dynamics(
                &AsymSwapGame::sum(),
                &tree,
                &DynamicsConfig::simulation(n * n * n).with_policy(policy),
                &mut rng,
            );
            assert!(sum_out.converged(), "SUM-ASG, n={n}, {}", policy.label());
            assert!(properties::is_tree(&sum_out.final_graph));
            let max_out = run_dynamics(
                &AsymSwapGame::max(),
                &tree,
                &DynamicsConfig::simulation(n * n * n).with_policy(policy),
                &mut rng,
            );
            assert!(max_out.converged(), "MAX-ASG, n={n}, {}", policy.label());
        }
    }
}

/// Corollary 3.2 (SUM part): under the max cost policy the SUM-ASG on an n-vertex
/// tree converges within `n + ⌈n/2⌉` moves (the paper's tight bound is
/// `n + ⌈n/2⌉ - 5` for odd n and `n - 3` for even n).
#[test]
fn sum_asg_max_cost_policy_linear_convergence() {
    let mut rng = StdRng::seed_from_u64(3);
    for &n in &[12usize, 21, 40] {
        let tree = generators::random_spanning_tree(n, Some(1), &mut rng);
        let out = run_dynamics(
            &AsymSwapGame::sum(),
            &tree,
            &DynamicsConfig::simulation(10 * n).with_policy(Policy::MaxCost),
            &mut rng,
        );
        assert!(out.converged());
        assert!(
            out.steps <= n + n / 2 + 1,
            "n={n}: {} steps exceeds the Corollary 3.2 bound",
            out.steps
        );
    }
}

/// Convergence regression: swap-game dynamics on trees must produce the
/// *identical* move sequence under the full-BFS, incremental and persistent
/// engines for a fixed seed — candidate scoring is exact in all three, so the
/// policy decisions and the RNG stream must coincide step by step.
#[test]
fn engines_produce_identical_move_sequences_on_trees() {
    use selfish_ncg::core::OracleKind;
    let mut seed_rng = StdRng::seed_from_u64(61);
    for trial in 0..4 {
        let n = 12 + 3 * trial;
        let tree = generators::random_spanning_tree(n, Some(1), &mut seed_rng);
        let games: Vec<(Box<dyn Game>, bool)> = vec![
            (Box::new(SwapGame::sum()), false),
            (Box::new(SwapGame::max()), false),
            (Box::new(AsymSwapGame::sum()), true),
            (Box::new(AsymSwapGame::max()), true),
        ];
        for (game, ownership) in &games {
            for policy in [Policy::MaxCost, Policy::Random] {
                let run = |oracle: OracleKind| {
                    let mut cfg = DynamicsConfig::simulation(n * n * n)
                        .with_policy(policy)
                        .with_tie_break(TieBreak::Random);
                    cfg.oracle = oracle;
                    cfg.record_trajectory = true;
                    cfg.ownership_in_state = *ownership;
                    let mut rng = StdRng::seed_from_u64(1000 + trial as u64);
                    run_dynamics(game.as_ref(), &tree, &cfg, &mut rng)
                };
                let reference = run(OracleKind::FullBfs);
                assert!(reference.converged(), "{} {}", game.name(), policy.label());
                for oracle in [OracleKind::Incremental, OracleKind::Persistent] {
                    let out = run(oracle);
                    let ctx = format!(
                        "n={n} {} {} {}",
                        game.name(),
                        policy.label(),
                        oracle.label()
                    );
                    assert_eq!(out.termination, reference.termination, "{ctx}");
                    assert_eq!(out.trajectory, reference.trajectory, "{ctx}");
                    assert_eq!(out.final_graph, reference.final_graph, "{ctx}");
                }
            }
        }
    }
}

/// Stable networks found on trees are pure Nash equilibria of the respective game.
#[test]
fn converged_trees_are_nash_equilibria() {
    let mut rng = StdRng::seed_from_u64(4);
    let n = 15;
    let tree = generators::random_spanning_tree(n, None, &mut rng);
    let game = SwapGame::sum();
    let out = run_dynamics(&game, &tree, &DynamicsConfig::simulation(10_000), &mut rng);
    assert!(out.converged());
    let mut ws = Workspace::new(n);
    assert!(equilibrium::is_stable(&game, &out.final_graph, &mut ws));
    assert!(equilibrium::unhappy_agents(&game, &out.final_graph, &mut ws).is_empty());
}
