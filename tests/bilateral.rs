//! Integration tests for the bilateral equal-split Buy Game of Section 5
//! (Corbo & Parkes' "bilateral network formation").
//!
//! The paper's Fig. 15 / Fig. 16 constructions are only published as figures; the
//! arXiv text describes their behaviour but not their exact edge lists, so these
//! tests exercise the bilateral mechanics the proofs rely on — consent blocking,
//! unilateral deletions, pairwise stability — and the dynamic behaviour on small
//! networks (see EXPERIMENTS.md for the reproduction status of Thm 5.1 / 5.2).

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfish_ncg::core::classify::{explore, ExploreConfig};
use selfish_ncg::core::{equilibrium, DynamicsConfig, Move, ResponseMode};
use selfish_ncg::prelude::*;

/// Consent: an agent can never force an edge onto a partner whose cost would
/// strictly increase; she can always delete unilaterally.
#[test]
fn consent_blocks_edges_that_hurt_the_partner() {
    // A star with an expensive edge price: every leaf would love to connect to
    // another leaf to shave distance, but the other leaf's cost would go up by
    // α/2 - 1 > 0, so every such proposal is blocked and the star is pairwise stable.
    let alpha = 6.0;
    let game = BilateralBuyGame::sum(alpha);
    let star = generators::star(7);
    let mut ws = Workspace::new(7);
    assert!(equilibrium::is_stable(&game, &star, &mut ws));

    // With a cheap edge price the same proposals are mutually beneficial, the star
    // is no longer stable, and dynamics densify the network.
    let cheap = BilateralBuyGame::sum(1.0);
    assert!(!equilibrium::is_stable(&cheap, &star, &mut ws));
    let mut rng = StdRng::seed_from_u64(1);
    let out = run_dynamics(&cheap, &star, &DynamicsConfig::simulation(500), &mut rng);
    assert!(out.converged());
    assert!(out.final_graph.num_edges() > star.num_edges());
}

/// Deletions are unilateral: if keeping an edge is too expensive the owner-side
/// agent simply drops it, no consent required.
#[test]
fn unilateral_deletion_reaches_pairwise_stability() {
    let alpha = 20.0;
    let game = BilateralBuyGame::sum(alpha);
    let mut rng = StdRng::seed_from_u64(3);
    let dense = generators::random_with_m_edges(10, 30, &mut rng);
    let out = run_dynamics(&game, &dense, &DynamicsConfig::simulation(2_000), &mut rng);
    assert!(out.converged());
    assert!(
        out.final_graph.num_edges() < dense.num_edges(),
        "an expensive α must lead to deletions"
    );
    let mut ws = Workspace::new(10);
    assert!(equilibrium::is_stable(&game, &out.final_graph, &mut ws));
    assert!(selfish_ncg::graph::is_connected(&out.final_graph));
}

/// The bilateral strategy space subsumes single-edge changes: any stable network
/// of the bilateral game is also stable when agents are restricted to single
/// deletions or single consensual additions.
#[test]
fn pairwise_stable_networks_resist_single_edge_changes() {
    let alpha = 4.0;
    let game = BilateralBuyGame::max(alpha);
    let mut rng = StdRng::seed_from_u64(9);
    let initial = generators::random_with_m_edges(8, 12, &mut rng);
    let out = run_dynamics(
        &game,
        &initial,
        &DynamicsConfig::simulation(2_000),
        &mut rng,
    );
    assert!(out.converged());
    let stable = out.final_graph;
    let mut ws = Workspace::new(8);
    for u in 0..8 {
        let improving = game.improving_moves(&stable, u, &mut ws);
        assert!(
            improving.is_empty(),
            "agent {u} must have no feasible improvement"
        );
    }
    // Spot check: re-adding any single missing edge cannot strictly help both endpoints.
    for u in 0..8 {
        for v in (u + 1)..8 {
            if stable.has_edge(u, v) {
                continue;
            }
            let mut ws2 = Workspace::new(8);
            let cu = game.cost(&stable, u, &mut ws2.bfs);
            let cv = game.cost(&stable, v, &mut ws2.bfs);
            let mut g2 = stable.clone();
            g2.add_edge(u, v);
            let cu2 = game.cost(&g2, u, &mut ws2.bfs);
            let cv2 = game.cost(&g2, v, &mut ws2.bfs);
            assert!(
                !(cu2 < cu && cv2 < cv),
                "edge {{{u},{v}}} would be a profitable bilateral deviation"
            );
        }
    }
}

/// Small bilateral instances have fully explorable improving-response state
/// spaces; on trees with moderate α the game behaves well (a stable state is
/// always reachable), matching the paper's observation that the problematic
/// dynamics only appear in carefully constructed instances.
#[test]
fn small_bilateral_instances_reach_stability() {
    let game = BilateralBuyGame::sum(3.0);
    let initial = generators::path(5);
    let mut cfg = ExploreConfig::default().with_max_states(20_000);
    cfg.response_mode = ResponseMode::BestResponse;
    let result = explore(&game, &initial, &cfg);
    assert!(result.complete);
    assert!(result.stable_state_reachable());
    assert!(result.every_state_reaches_stable());
}

/// Cost accounting of the bilateral game: each endpoint pays α/2 per incident edge.
#[test]
fn equal_split_cost_accounting() {
    let alpha = 5.0;
    let game = BilateralBuyGame::sum(alpha);
    let g = generators::path(4);
    let mut ws = Workspace::new(4);
    // Middle vertex: degree 2 -> edge cost α, distances 1+1+2 = 4.
    assert_eq!(game.cost(&g, 1, &mut ws.bfs), alpha + 4.0);
    // End vertex: degree 1 -> α/2, distances 1+2+3 = 6.
    assert_eq!(game.cost(&g, 0, &mut ws.bfs), alpha / 2.0 + 6.0);
    // A SetNeighbors move that only deletes is never blocked.
    let mv = Move::SetNeighbors {
        new_neighbors: vec![0],
    };
    let improving = game.improving_moves(&g, 1, &mut ws);
    // With α = 5 the middle vertex would love to drop an edge but that would
    // disconnect the path — infinite distance cost — so it is not improving.
    assert!(improving.iter().all(|s| s.mv != mv));
}
