//! Integration tests reproducing the *qualitative shape* of the paper's empirical
//! study (Fig. 7, 8, 11–14) at a reduced scale:
//!
//! * every simulated run converges (no better-response cycle is ever encountered),
//! * convergence takes a small constant number of steps per agent (the paper's
//!   envelopes are 5n for the ASG, 7n / 8n for the GBG),
//! * for the SUM games the max cost policy is at least as fast as the random
//!   policy on average,
//! * for the GBG the directed-line start (`dl`) is not slower than the random
//!   start in the SUM version (Fig. 12's counter-intuitive finding).

use ncg_sim::{
    run_point, AlphaSpec, EngineSpec, ExperimentPoint, FigureData, GameFamily, InitialTopology,
};
use selfish_ncg::prelude::Policy;

fn point(
    family: GameFamily,
    n: usize,
    topology: InitialTopology,
    alpha: AlphaSpec,
    policy: Policy,
    trials: usize,
    seed: u64,
) -> ExperimentPoint {
    ExperimentPoint {
        n,
        family,
        alpha,
        topology,
        policy,
        trials,
        base_seed: seed,
        max_steps_factor: 400,
        engine: EngineSpec::default(),
    }
}

#[test]
fn fig07_shape_sum_asg_converges_within_5n() {
    for &k in &[1usize, 2, 3] {
        for policy in [Policy::MaxCost, Policy::Random] {
            let p = point(
                GameFamily::AsgSum,
                30,
                InitialTopology::Budgeted { k },
                AlphaSpec::Fixed(0.0),
                policy,
                15,
                100 + k as u64,
            );
            let s = run_point(&p, None);
            assert_eq!(s.non_converged, 0, "k={k}, {}", policy.label());
            assert!(
                s.max_steps <= 5 * p.n,
                "k={k}, {}: {} steps exceeds the 5n envelope",
                policy.label(),
                s.max_steps
            );
        }
    }
}

#[test]
fn fig08_shape_max_asg_converges_within_5n() {
    for &k in &[1usize, 3] {
        for policy in [Policy::MaxCost, Policy::Random] {
            let p = point(
                GameFamily::AsgMax,
                30,
                InitialTopology::Budgeted { k },
                AlphaSpec::Fixed(0.0),
                policy,
                15,
                200 + k as u64,
            );
            let s = run_point(&p, None);
            assert_eq!(s.non_converged, 0);
            assert!(
                s.max_steps <= 5 * p.n + p.n,
                "k={k}, {}: {} steps",
                policy.label(),
                s.max_steps
            );
        }
    }
}

#[test]
fn fig11_fig13_shape_gbg_converges_linearly() {
    for family in [GameFamily::GbgSum, GameFamily::GbgMax] {
        let envelope = if family == GameFamily::GbgSum { 7 } else { 8 };
        for &m in &[1usize, 4] {
            let p = point(
                family,
                25,
                InitialTopology::RandomEdges { m_per_n: m },
                AlphaSpec::FractionOfN(0.25),
                Policy::MaxCost,
                12,
                300 + m as u64,
            );
            let s = run_point(&p, None);
            assert_eq!(s.non_converged, 0, "{} m={m}n", family.label());
            assert!(
                s.max_steps <= envelope * p.n,
                "{} m={m}n: {} steps exceeds {}n",
                family.label(),
                s.max_steps,
                envelope
            );
            // Dense starts require deletions (a star-like equilibrium has ~n-1 edges).
            if m == 4 {
                assert!(s.kinds.deletions > 0);
            }
        }
    }
}

#[test]
fn sum_games_max_cost_policy_not_slower_than_random() {
    // Fig. 7 and Fig. 11: in the SUM versions the max cost policy converges at
    // least as fast (on average) as the random policy. Allow a small tolerance
    // because our trial counts are far below the paper's 10,000.
    let mk = |policy| {
        point(
            GameFamily::AsgSum,
            40,
            InitialTopology::Budgeted { k: 2 },
            AlphaSpec::Fixed(0.0),
            policy,
            20,
            4242,
        )
    };
    let max_cost = run_point(&mk(Policy::MaxCost), None);
    let random = run_point(&mk(Policy::Random), None);
    assert!(
        max_cost.avg_steps <= random.avg_steps * 1.15,
        "max cost ({:.1}) should not be slower than random ({:.1})",
        max_cost.avg_steps,
        random.avg_steps
    );
}

#[test]
fn fig12_shape_directed_line_not_slower_than_random_start() {
    // Fig. 12's surprising observation: for the SUM-GBG the dl start converges
    // at least as fast as the random start (the authors expected the opposite).
    let mk = |topology| {
        point(
            GameFamily::GbgSum,
            30,
            topology,
            AlphaSpec::FractionOfN(0.25),
            Policy::MaxCost,
            12,
            777,
        )
    };
    let dl = run_point(&mk(InitialTopology::DirectedLine), None);
    let random = run_point(&mk(InitialTopology::RandomEdges { m_per_n: 1 }), None);
    assert_eq!(dl.non_converged + random.non_converged, 0);
    assert!(
        dl.max_steps as f64 <= random.max_steps as f64 * 1.5 + 10.0,
        "dl ({}) should be in the same regime as random ({})",
        dl.max_steps,
        random.max_steps
    );
}

#[test]
fn figure_harness_runs_end_to_end_at_tiny_scale() {
    // Smoke test of the full Fig. 7 pipeline (definition -> runner -> report).
    let def = ncg_sim::experiments::fig07().scaled(20, 4, 3);
    let data = FigureData::measure(&def, None);
    assert!(
        data.all_converged(),
        "no better-response cycle may be encountered"
    );
    assert!(data.worst_steps_per_agent() <= 5.0);
    let table = ncg_sim::render_table(&def, &data);
    assert!(table.contains("all trials converged: true"));
}
