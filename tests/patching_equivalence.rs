//! Randomized equivalence of the `O(changes)` fast paths added for the
//! patched-CSR engine:
//!
//! * [`CsrAdjacency::patch_from_journal`] ≡ [`CsrAdjacency::rebuild_from`]
//!   over random journal windows — including windows denser than the patch
//!   limit (rebuild fallback), node-count growth/shrink, and hub-insert
//!   storms that exhaust the per-segment slack (compaction fallback);
//! * bilateral delta-scored consent ≡ apply → BFS → undo consent over random
//!   move sequences, for both cost families (SUM and MAX): the persistent
//!   workspace must produce exactly the improving-move and best-response
//!   lists of the scratch-graph fallback at every visited state.
//!
//! Driven by seeded loops over the deterministic [`StdRng`] shim; every
//! failure is reproducible from the printed case/seed. Iteration counts are
//! scaled down in debug builds (the tier-1 `cargo test -q` run) and reach
//! ≥ 500 random move sequences per cost family in `--release` (the CI
//! release job).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use selfish_ncg::core::{OracleKind, Workspace};
use selfish_ncg::graph::{generators, CsrAdjacency, OwnedGraph, PatchOutcome};
use selfish_ncg::prelude::*;

/// Scale factor for the randomized loops (see module docs).
const SCALE: usize = if cfg!(debug_assertions) { 1 } else { 10 };

fn assert_csr_matches(csr: &CsrAdjacency, g: &OwnedGraph, what: &str) {
    assert_eq!(csr.num_nodes(), g.num_nodes(), "{what}: node count");
    assert_eq!(csr.endpoint_count(), g.endpoint_count(), "{what}: 2m");
    for u in 0..g.num_nodes() {
        let expected: Vec<u32> = g.neighbors(u).iter().map(|&v| v as u32).collect();
        assert_eq!(csr.neighbors(u), expected.as_slice(), "{what}: vertex {u}");
    }
}

/// Applies a random batch of structural changes to `g`, biased towards the
/// small windows of real dynamics steps but occasionally dense enough to
/// exercise the rebuild fallback. Returns the number of changes journaled.
fn mutate_batch<R: Rng>(g: &mut OwnedGraph, rng: &mut R) -> usize {
    let n = g.num_nodes();
    let batch = if rng.gen_bool(0.15) {
        // Dense window: past the patch limit with high probability.
        rng.gen_range(n / 4..n.max(8))
    } else {
        rng.gen_range(1usize..4)
    };
    let mut applied = 0;
    for _ in 0..batch {
        let hub_storm = rng.gen_bool(0.3);
        let (a, b) = if hub_storm {
            // Bias one endpoint to vertex 0: repeated hub inserts exhaust
            // the hub segment's slack and force a compaction.
            (0, rng.gen_range(1..n))
        } else {
            (rng.gen_range(0..n), rng.gen_range(0..n))
        };
        if a == b {
            continue;
        }
        let changed = if g.has_edge(a, b) && !rng.gen_bool(0.6) {
            g.remove_edge(a, b)
        } else {
            g.add_edge(a, b)
        };
        if changed {
            applied += 1;
        }
    }
    applied
}

#[test]
fn csr_patch_matches_rebuild_over_random_journals() {
    for case in 0..40 * SCALE {
        let mut rng = StdRng::seed_from_u64(0xC5A0 + case as u64);
        let n = rng.gen_range(4usize..48);
        let mut g = generators::random_with_m_edges(n, rng.gen_range(n..3 * n), &mut rng);
        let mut csr = CsrAdjacency::build(&g);
        let (mut patched, mut fell_back) = (0usize, 0usize);
        for round in 0..30 {
            let from = g.version();
            mutate_batch(&mut g, &mut rng);
            let changes = g.changes_since(from).expect("window retained");
            let outcome = csr.patch_from_journal(&g, changes);
            match outcome {
                PatchOutcome::Patched => patched += 1,
                PatchOutcome::Compacted | PatchOutcome::Rebuilt => fell_back += 1,
            }
            assert_csr_matches(
                &csr,
                &g,
                &format!("case {case} round {round} ({outcome:?})"),
            );
        }
        assert!(
            patched > 0 || fell_back > 0,
            "case {case}: the loop must exercise the patcher"
        );
        // Node-count changes degrade to a rebuild and stay correct.
        let resized_n = if n > 20 { n / 2 } else { n + 7 };
        let resized = generators::random_with_m_edges(
            resized_n,
            rng.gen_range(resized_n..2 * resized_n),
            &mut rng,
        );
        let outcome = csr.patch_from_journal(&resized, &[]);
        assert_eq!(outcome, PatchOutcome::Rebuilt, "case {case}: resize");
        assert_csr_matches(&csr, &resized, &format!("case {case} resized"));
    }
}

/// One random bilateral move sequence: at every state compare the persistent
/// (delta consent) and incremental (apply → BFS → undo) scans for a sampled
/// agent, then advance with a random feasible improving move.
fn bilateral_sequence(metric_max: bool, case: u64) {
    let mut rng = StdRng::seed_from_u64(0xB11A + case);
    let n = rng.gen_range(5usize..8);
    let alpha = [0.8, 2.0, 5.0][rng.gen_range(0..3usize)];
    let game = if metric_max {
        BilateralBuyGame::max(alpha)
    } else {
        BilateralBuyGame::sum(alpha)
    };
    let mut g = generators::random_with_m_edges(n, rng.gen_range(n - 1..2 * n), &mut rng);
    let mut fast = Workspace::with_oracle(n, OracleKind::Persistent);
    let mut slow = Workspace::with_oracle(n, OracleKind::Incremental);
    for step in 0..6 {
        let probe = rng.gen_range(0..n);
        let a = game.improving_moves(&g, probe, &mut fast);
        let b = game.improving_moves(&g, probe, &mut slow);
        assert_eq!(a, b, "case {case} step {step} agent {probe}: improving");
        let a = game.best_responses(&g, probe, &mut fast);
        let b = game.best_responses(&g, probe, &mut slow);
        assert_eq!(a, b, "case {case} step {step} agent {probe}: best");
        // Advance the state with a random agent's random improving move so
        // later scans (and the persistent caches) see evolving graphs.
        let mover = rng.gen_range(0..n);
        let moves = game.improving_moves(&g, mover, &mut slow);
        if let Some(chosen) = moves.choose(&mut rng) {
            selfish_ncg::core::apply_move(&mut g, mover, &chosen.mv).expect("improving applies");
        }
    }
}

#[test]
fn bilateral_delta_consent_equivalence_sum() {
    // ≥ 500 random sequences in release (50 · SCALE = 500), 50 in debug.
    for case in 0..50 * SCALE {
        bilateral_sequence(false, case as u64);
    }
}

#[test]
fn bilateral_delta_consent_equivalence_max() {
    for case in 0..50 * SCALE {
        bilateral_sequence(true, case as u64);
    }
}
