//! Randomized equivalence of the persistent oracle's **lazy version-replay**
//! model against the eager-sync model and from-scratch BFS.
//!
//! Three synchronization disciplines are driven over the same random move
//! sequences:
//!
//! * *lazy* — vectors are only advanced by [`DistanceOracle::warm_sources`]
//!   (fed the exact changed-vector set of each window, the dynamics engine's
//!   contract) and by on-demand replay inside queries;
//! * *eager* — every parked vector is re-pinned at every version
//!   (`pin_sources` over all sources, the pre-lazy model);
//! * *truth* — a fresh BFS per query.
//!
//! All three must agree on every distance vector and summary after every
//! window, including windows longer than the staleness limit (per-vector
//! fallback), under LRU budget pressure (eviction), and across the
//! cache-arithmetic scoring path (`lazy_hits`). Iteration counts scale up in
//! `--release` like the other randomized suites.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfish_ncg::core::dynamics::DynamicsConfig;
use selfish_ncg::core::{Game, GreedyBuyGame, OracleKind, Workspace};
use selfish_ncg::graph::oracle::{DistanceOracle, IncrementalOracle};
use selfish_ncg::graph::{generators, BfsBuffer, OwnedGraph};
use selfish_ncg::prelude::*;

/// Scale factor for the randomized loops: modest in debug (tier-1), the full
/// load in release (CI release job).
const SCALE: usize = if cfg!(debug_assertions) { 1 } else { 10 };

fn random_graph<R: Rng>(rng: &mut R) -> OwnedGraph {
    let n = rng.gen_range(8usize..28);
    match rng.gen_range(0u32..3) {
        0 => generators::budgeted_random(n, rng.gen_range(1usize..3).min((n - 2) / 2), rng),
        1 => generators::random_with_m_edges(n, rng.gen_range(n..3 * n), rng),
        _ => generators::random_spanning_tree(n, None, rng),
    }
}

/// Applies one random structural change to `g`; returns `false` if nothing
/// applied (e.g. the graph is complete).
fn apply_random_change<R: Rng>(g: &mut OwnedGraph, rng: &mut R) -> bool {
    let n = g.num_nodes();
    if rng.gen_bool(0.5) {
        let edges: Vec<_> = g.edges().map(|e| (e.owner, e.other)).collect();
        if !edges.is_empty() {
            let (u, v) = edges[rng.gen_range(0..edges.len())];
            return g.remove_edge(u, v);
        }
    }
    for _ in 0..20 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge(u, v) {
            return g.add_edge(u, v);
        }
    }
    false
}

/// The exact set of sources whose distance vector differs from `pre`,
/// refreshing `pre` in place — the ground-truth dirty set of one window.
fn changed_vectors(g: &OwnedGraph, pre: &mut [Vec<u16>], buf: &mut BfsBuffer) -> Vec<usize> {
    let n = g.num_nodes();
    let mut dirty = Vec::new();
    for (x, pre_x) in pre.iter_mut().enumerate() {
        let now = &buf.run(g, x)[..n];
        if now != pre_x.as_slice() {
            dirty.push(x);
            pre_x.clear();
            pre_x.extend_from_slice(now);
        }
    }
    dirty
}

/// Tentpole property: lazy per-source version replay ≡ eager per-version
/// sync ≡ full BFS over long random move sequences, with bursts past the
/// staleness limit (per-vector fallback), an LRU-budgeted twin (eviction)
/// and a byte-budgeted twin (ball-sparse demotion) riding along.
#[test]
fn lazy_warming_matches_eager_sync_and_full_bfs() {
    let mut rng = StdRng::seed_from_u64(0x1a2f);
    let cases = 6 * SCALE;
    let mut warm_batches = 0u64;
    let mut warm_bumps = 0u64;
    let mut lazy_replays = 0u64;
    let mut sparse_demotions = 0u64;
    for case in 0..cases {
        let mut g = random_graph(&mut rng);
        let n = g.num_nodes();
        let all: Vec<usize> = (0..n).collect();
        let mut lazy = IncrementalOracle::persistent(n);
        let mut capped = IncrementalOracle::persistent_budgeted(n, Some(3));
        // Room for about three dense slots: every park past that demotes the
        // stalest parked vector to its ball-sparse form.
        let byte_cap = 3 * 2 * (2 * n as u64 + 2);
        let mut sparse = IncrementalOracle::persistent_with_budgets(n, None, Some(byte_cap));
        let mut eager = IncrementalOracle::persistent(n);
        let mut buf = BfsBuffer::new(n);
        lazy.pin_sources(&g, &all);
        capped.pin_sources(&g, &all);
        sparse.pin_sources(&g, &all);
        eager.pin_sources(&g, &all);
        let mut pre: Vec<Vec<u16>> = (0..n).map(|x| buf.run(&g, x)[..n].to_vec()).collect();
        for step in 0..18 {
            // Mostly small windows (the per-move regime); occasionally a
            // burst past the staleness limit max(8, n/8) so replay fails
            // per-vector and the full-BFS fallback path is exercised.
            let window = if rng.gen_bool(0.15) {
                (n / 8).max(8) + 3
            } else {
                rng.gen_range(1usize..3)
            };
            for _ in 0..window {
                apply_random_change(&mut g, &mut rng);
            }
            let dirty = changed_vectors(&g, &mut pre, &mut buf);
            lazy.warm_sources(&g, &dirty);
            capped.warm_sources(&g, &dirty);
            sparse.warm_sources(&g, &dirty);
            eager.pin_sources(&g, &all);
            for probe in 0..4 {
                let src = rng.gen_range(0..n);
                let expect = buf.summary(&g, src);
                let ctx = format!("case {case} step {step} probe {probe} src {src}");
                assert_eq!(lazy.begin(&g, src), expect, "lazy {ctx}");
                assert_eq!(lazy.base_distances(), &buf.run(&g, src)[..n], "lazy {ctx}");
                assert_eq!(capped.begin(&g, src), expect, "capped {ctx}");
                assert_eq!(
                    capped.base_distances(),
                    &buf.run(&g, src)[..n],
                    "capped {ctx}"
                );
                assert_eq!(sparse.begin(&g, src), expect, "sparse {ctx}");
                assert_eq!(
                    sparse.base_distances(),
                    &buf.run(&g, src)[..n],
                    "sparse {ctx}"
                );
                assert_eq!(eager.begin(&g, src), expect, "eager {ctx}");
            }
        }
        let stats = lazy.stats();
        warm_batches += stats.warm_batches;
        warm_bumps += stats.warm_bumps;
        lazy_replays += stats.lazy_replays;
        let sparse_stats = sparse.stats();
        sparse_demotions += sparse_stats.sparse_demotions;
        assert!(
            sparse_stats.peak_parked_bytes <= byte_cap,
            "case {case}: the recorded peak must respect the byte budget"
        );
    }
    // The lazy discipline must actually have taken its fast paths, not fallen
    // back to full BFS throughout.
    assert!(warm_batches > 0, "bulk warming never ran");
    assert!(warm_bumps > 0, "no clean vector was stamp-bumped");
    assert!(lazy_replays > 0, "no dirty vector was lazily replayed");
    assert!(
        sparse_demotions > 0,
        "the byte budget never forced a demotion"
    );
}

/// Tentpole property of the word-parallel waves: a batched oracle (64-wide
/// bitset BFS bulk repins, the default), a scalar twin (batching off) and
/// fresh BFS must agree on every distance vector and summary over random
/// move sequences — including burst windows past the replay limit, which is
/// exactly when the batched path recomputes whole slot groups in shared
/// waves while the scalar twin leaves them for per-source full-BFS re-pins.
#[test]
fn batched_warm_replay_matches_scalar_and_full_bfs() {
    let mut rng = StdRng::seed_from_u64(0xb175);
    let mut batched_repins = 0u64;
    for case in 0..6 * SCALE {
        let mut g = random_graph(&mut rng);
        let n = g.num_nodes();
        let all: Vec<usize> = (0..n).collect();
        let mut batched = IncrementalOracle::persistent(n);
        let mut scalar = IncrementalOracle::persistent(n);
        scalar.set_warm_batching(false);
        let mut buf = BfsBuffer::new(n);
        batched.pin_sources(&g, &all);
        scalar.pin_sources(&g, &all);
        let mut pre: Vec<Vec<u16>> = (0..n).map(|x| buf.run(&g, x)[..n].to_vec()).collect();
        for step in 0..14 {
            // Mostly small windows; frequent bursts past the replay limit
            // max(8, n/8), which is what routes slots into the waves.
            let window = if rng.gen_bool(0.3) {
                (n / 8).max(8) + 2
            } else {
                rng.gen_range(1usize..3)
            };
            for _ in 0..window {
                apply_random_change(&mut g, &mut rng);
            }
            let dirty = changed_vectors(&g, &mut pre, &mut buf);
            batched.warm_sources(&g, &dirty);
            scalar.warm_sources(&g, &dirty);
            if step % 4 == 3 {
                // Periodic bulk re-pin: cold and unreplayable sources go
                // through the shared waves on the batched oracle.
                batched.pin_sources(&g, &all);
                scalar.pin_sources(&g, &all);
                for &src in &all {
                    let expect = buf.summary(&g, src);
                    let ctx = format!("case {case} step {step} src {src}");
                    assert_eq!(
                        batched.cached_summary(&g, src),
                        Some(expect),
                        "batched {ctx}"
                    );
                    assert_eq!(scalar.cached_summary(&g, src), Some(expect), "scalar {ctx}");
                }
            }
            for probe in 0..4 {
                let src = rng.gen_range(0..n);
                let expect = buf.summary(&g, src);
                let ctx = format!("case {case} step {step} probe {probe} src {src}");
                assert_eq!(batched.begin(&g, src), expect, "batched {ctx}");
                assert_eq!(
                    batched.base_distances(),
                    &buf.run(&g, src)[..n],
                    "batched {ctx}"
                );
                assert_eq!(scalar.begin(&g, src), expect, "scalar {ctx}");
                assert_eq!(
                    scalar.base_distances(),
                    &buf.run(&g, src)[..n],
                    "scalar {ctx}"
                );
            }
        }
        batched_repins += batched.stats().batched_repins;
        assert_eq!(
            scalar.stats().batched_repins,
            0,
            "case {case}: the scalar twin must never batch"
        );
    }
    assert!(batched_repins > 0, "the word-parallel waves never ran");
}

/// Staleness bursts crossing the dense/sparse boundary: a byte-budgeted
/// oracle rides windows that alternate between per-move dribbles and bursts
/// past the staleness limit `max(8, n/8)`. A dirty demoted slot cannot
/// replay (its ball is a read-only summary surface), so the warm pass
/// re-promotes it through the shared recompute waves, and the budget then
/// demotes the stalest survivors again — vectors cross the boundary in both
/// directions all run long. Every current summary and every activation must
/// match fresh BFS throughout.
#[test]
fn staleness_bursts_cross_the_sparse_boundary_exactly() {
    let mut rng = StdRng::seed_from_u64(0xba11);
    let mut demotions = 0u64;
    let mut waves = 0u64;
    let mut sparse_now = 0u64;
    for case in 0..5 * SCALE {
        let mut g = random_graph(&mut rng);
        let n = g.num_nodes();
        let all: Vec<usize> = (0..n).collect();
        // Room for about a third of the slots dense: the rest live in balls.
        let byte_cap = (n as u64 / 3).max(2) * 2 * (2 * n as u64 + 2);
        let mut oracle = IncrementalOracle::persistent_with_budgets(n, None, Some(byte_cap));
        let mut buf = BfsBuffer::new(n);
        oracle.pin_sources(&g, &all);
        let mut pre: Vec<Vec<u16>> = (0..n).map(|x| buf.run(&g, x)[..n].to_vec()).collect();
        for step in 0..12 {
            let window = if step % 3 == 2 {
                (n / 8).max(8) + 2
            } else {
                rng.gen_range(1usize..3)
            };
            for _ in 0..window {
                apply_random_change(&mut g, &mut rng);
            }
            let dirty = changed_vectors(&g, &mut pre, &mut buf);
            oracle.warm_sources(&g, &dirty);
            // After warming over the exact dirty set, every slot the budget
            // kept — dense or demoted — serves the fresh-BFS summary; only
            // evicted slots may answer `None`.
            for &src in &all {
                if let Some(summary) = oracle.cached_summary(&g, src) {
                    assert_eq!(
                        summary,
                        buf.summary(&g, src),
                        "case {case} step {step} src {src}"
                    );
                }
            }
            sparse_now += oracle.sparse_parked() as u64;
            for probe in 0..3 {
                let src = rng.gen_range(0..n);
                let ctx = format!("case {case} step {step} probe {probe} src {src}");
                assert_eq!(oracle.begin(&g, src), buf.summary(&g, src), "{ctx}");
                assert_eq!(oracle.base_distances(), &buf.run(&g, src)[..n], "{ctx}");
            }
        }
        let stats = oracle.stats();
        demotions += stats.sparse_demotions;
        waves += stats.batched_repins;
    }
    assert!(demotions > 0, "the byte budget never forced a demotion");
    assert!(waves > 0, "no demoted slot was re-promoted through a wave");
    assert!(sparse_now > 0, "no slot was ever held in ball-sparse form");
}

/// Out-of-ball reads at the game level: a byte-starved persistent workspace
/// must score buy scans exactly like the full-BFS workspace even when every
/// parked vector lives in a shrunken ball (down to the source alone), so
/// insert-kernel reads routinely refuse — out of ball, or radius cut below
/// the demand — and fall back to an exact delta evaluation.
#[test]
fn byte_starved_buy_scans_fall_back_exactly() {
    let mut rng = StdRng::seed_from_u64(0x0ba1);
    let mut demotions = 0u64;
    for case in 0..5 * SCALE {
        let n = rng.gen_range(10usize..24);
        let mut g = generators::random_with_m_edges(n, 2 * n, &mut rng);
        let game = GreedyBuyGame::sum(n as f64 / 4.0);
        // Two dense slots' worth: the working vector's park plus one more;
        // everything else demotes to near-point balls.
        let byte_cap = 2 * 2 * (2 * n as u64 + 2);
        let mut ws_pers =
            Workspace::with_engine_budgets(n, OracleKind::Persistent, None, Some(byte_cap));
        let mut ws_full = Workspace::with_oracle(n, OracleKind::FullBfs);
        for u in 0..n {
            let _ = game.improving_moves(&g, u, &mut ws_pers);
        }
        for _ in 0..2 {
            apply_random_change(&mut g, &mut rng);
        }
        for u in 0..n {
            assert_eq!(
                game.improving_moves(&g, u, &mut ws_pers),
                game.improving_moves(&g, u, &mut ws_full),
                "case {case} agent {u}"
            );
            assert_eq!(
                game.best_response(&g, u, &mut ws_pers),
                game.best_response(&g, u, &mut ws_full),
                "case {case} agent {u}"
            );
        }
        demotions += ws_pers.oracle_stats().sparse_demotions;
    }
    assert!(demotions > 0, "the byte budget never forced a demotion");
}

/// The warming contract tolerates gaps: when several windows pass between
/// warming calls, handing the union of their changed sets must stay exact
/// (the floor check only trusts stamp bumps across an unbroken chain).
#[test]
fn warming_with_gaps_and_unions_stays_exact() {
    let mut rng = StdRng::seed_from_u64(0x9a55);
    for case in 0..4 * SCALE {
        let mut g = random_graph(&mut rng);
        let n = g.num_nodes();
        let all: Vec<usize> = (0..n).collect();
        let mut oracle = IncrementalOracle::persistent(n);
        let mut buf = BfsBuffer::new(n);
        oracle.pin_sources(&g, &all);
        let mut pre: Vec<Vec<u16>> = (0..n).map(|x| buf.run(&g, x)[..n].to_vec()).collect();
        for step in 0..10 {
            // 1–3 windows between warming calls; the dirty set below is the
            // union over the whole gap because `changed_vectors` diffs
            // against the state at the *previous warm*.
            for _ in 0..rng.gen_range(1usize..4) {
                apply_random_change(&mut g, &mut rng);
            }
            let dirty = changed_vectors(&g, &mut pre, &mut buf);
            oracle.warm_sources(&g, &dirty);
            for &src in all.iter().take(5) {
                assert_eq!(
                    oracle.begin(&g, src),
                    buf.summary(&g, src),
                    "case {case} step {step} src {src}"
                );
                assert_eq!(oracle.base_distances(), &buf.run(&g, src)[..n]);
            }
        }
    }
}

/// On-demand lazy warming inside the cache-arithmetic path: park every
/// vector, mutate the graph *without* re-pinning, and the buy-candidate
/// scans must still match the full-BFS workspace exactly — with `lazy_hits`
/// proving the fast path was served by on-demand replay rather than falling
/// back.
#[test]
fn on_demand_warming_keeps_buy_scans_exact() {
    let mut rng = StdRng::seed_from_u64(0x0dde);
    let mut hits = 0u64;
    for case in 0..6 * SCALE {
        let n = rng.gen_range(10usize..24);
        let mut g = generators::random_with_m_edges(n, 2 * n, &mut rng);
        let game = GreedyBuyGame::sum(n as f64 / 4.0);
        let mut ws_pers = Workspace::with_oracle(n, OracleKind::Persistent);
        let mut ws_full = Workspace::with_oracle(n, OracleKind::FullBfs);
        // Park every source's vector at the current version…
        for u in 0..n {
            let _ = game.improving_moves(&g, u, &mut ws_pers);
        }
        // …then move the graph on without telling the persistent workspace.
        for _ in 0..2 {
            apply_random_change(&mut g, &mut rng);
        }
        for u in 0..n {
            assert_eq!(
                game.improving_moves(&g, u, &mut ws_pers),
                game.improving_moves(&g, u, &mut ws_full),
                "case {case} agent {u}"
            );
            assert_eq!(
                game.best_response(&g, u, &mut ws_pers),
                game.best_response(&g, u, &mut ws_full),
                "case {case} agent {u}"
            );
        }
        hits += ws_pers.oracle_stats().lazy_hits;
    }
    assert!(
        hits > 0,
        "stale parked vectors were never served by on-demand warming"
    );
}

/// Regression at the old crossover point (SUM-GBG, where PR 4's dirty engine
/// lost to the eager persistent engine at n ≥ 128): the dirty engines form
/// one trajectory class — incremental+dirty, persistent+dirty (warm) and
/// persistent+dirty (cold) must replay the *identical* move sequence for the
/// same seed. Warming is invisible to everything but the clock.
#[test]
fn dirty_trajectory_identity_at_the_old_crossover() {
    let ns: &[usize] = if cfg!(debug_assertions) {
        &[32]
    } else {
        &[128, 256]
    };
    for &n in ns {
        let mut seed_rng = StdRng::seed_from_u64(0xc055);
        let g = generators::random_with_m_edges(n, 2 * n, &mut seed_rng);
        let game = GreedyBuyGame::sum(n as f64 / 4.0);
        let run = |oracle: OracleKind, warm: bool, batch: bool| {
            let mut rng = StdRng::seed_from_u64(0x7ea5);
            let mut cfg = DynamicsConfig::simulation(400 * n)
                .with_oracle(oracle)
                .with_dirty_agents(true)
                .with_warm_parked(warm)
                .with_warm_batching(batch);
            cfg.record_trajectory = true;
            run_dynamics(&game, &g, &cfg, &mut rng)
        };
        let reference = run(OracleKind::Incremental, false, true);
        assert!(reference.converged(), "n={n}: reference must converge");
        for (oracle, warm, batch) in [
            (OracleKind::Persistent, true, true),
            (OracleKind::Persistent, true, false),
            (OracleKind::Persistent, false, true),
        ] {
            let out = run(oracle, warm, batch);
            assert_eq!(
                out.trajectory,
                reference.trajectory,
                "n={n} {} warm={warm} batch={batch}: dirty trajectory diverged",
                oracle.label()
            );
            assert_eq!(out.final_graph, reference.final_graph, "n={n}");
            assert_eq!(out.termination, reference.termination, "n={n}");
        }
    }
}
