//! Randomized property tests for the core invariants of the library:
//! graph substrate consistency, strict improvement of moves, potential functions
//! on trees, and convergence of the simulated game families.
//!
//! The cases are driven by seeded loops over our deterministic [`StdRng`] shim
//! (the offline build has no proptest), so every failure is reproducible from
//! the printed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfish_ncg::core::potential::{lex_decreased, sorted_cost_vector};
use selfish_ncg::core::{apply_move, undo_move, DynamicsConfig, Game};
use selfish_ncg::graph::{
    canonical_state_key, is_connected, is_tree, properties, BfsBuffer, DistanceMatrix,
};
use selfish_ncg::prelude::*;

fn seeded_graph(n: usize, m_per_n: usize, seed: u64) -> OwnedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::random_with_m_edges(n, m_per_n * n, &mut rng)
}

/// The budgeted generator always produces connected simple graphs where every
/// agent owns exactly k edges, and the invariants of the ownership structure hold.
#[test]
fn budgeted_generator_invariants() {
    let mut pick = StdRng::seed_from_u64(0xb1);
    for case in 0..24 {
        let n = pick.gen_range(6usize..40);
        let k = pick.gen_range(1usize..4);
        if k * 2 + 1 >= n {
            continue;
        }
        let seed = pick.gen_range(0u64..1000);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::budgeted_random(n, k, &mut rng);
        assert!(is_connected(&g), "case {case}: n={n} k={k} seed={seed}");
        assert_eq!(g.num_edges(), n * k, "case {case}");
        for v in 0..n {
            assert_eq!(g.owned_degree(v), k, "case {case}: vertex {v}");
        }
        g.check_invariants().unwrap();
    }
}

/// Random spanning trees are trees; BFS distances agree with the all-pairs matrix.
#[test]
fn distances_are_consistent() {
    let mut pick = StdRng::seed_from_u64(0xd1);
    for case in 0..24 {
        let n = pick.gen_range(2usize..30);
        let seed = pick.gen_range(0u64..1000);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_spanning_tree(n, None, &mut rng);
        assert!(is_tree(&g), "case {case}: n={n} seed={seed}");
        let matrix = DistanceMatrix::compute(&g);
        let mut buf = BfsBuffer::new(n);
        for s in 0..n {
            assert_eq!(matrix.row(s), buf.run(&g, s), "case {case}: source {s}");
        }
        for u in 0..n {
            for v in 0..n {
                assert_eq!(matrix.dist(u, v), matrix.dist(v, u), "case {case}");
            }
        }
        let diameter = properties::diameter(&g).unwrap();
        assert!(matrix.eccentricity(0).unwrap() <= diameter, "case {case}");
    }
}

/// Applying any improving move strictly decreases the mover's cost, and undoing
/// it restores the exact state (including ownership).
#[test]
fn improving_moves_improve_and_undo_restores() {
    let mut pick = StdRng::seed_from_u64(0x1e);
    for case in 0..30 {
        let seed = pick.gen_range(0u64..500);
        let agent = pick.gen_range(0usize..15);
        let g = seeded_graph(15, 2, seed);
        let game = GreedyBuyGame::sum(4.0);
        let mut ws = Workspace::new(15);
        let before_key = canonical_state_key(&g);
        let improving = game.improving_moves(&g, agent, &mut ws);
        let old_cost = game.cost(&g, agent, &mut ws.bfs);
        let mut h = g.clone();
        for scored in improving {
            assert!(scored.new_cost < old_cost, "case {case}: seed={seed}");
            let undo = apply_move(&mut h, agent, &scored.mv).expect("applies");
            let measured = game.cost(&h, agent, &mut ws.bfs);
            assert!(
                (measured - scored.new_cost).abs() < 1e-9,
                "case {case}: scored {} vs measured {measured}",
                scored.new_cost
            );
            undo_move(&mut h, agent, &undo);
            assert_eq!(canonical_state_key(&h), before_key, "case {case}");
        }
    }
}

/// Best responses are at least as good as every improving move.
#[test]
fn best_responses_dominate_improving_moves() {
    let mut pick = StdRng::seed_from_u64(0xbd);
    for case in 0..20 {
        let seed = pick.gen_range(0u64..300);
        let agent = pick.gen_range(0usize..12);
        let g = seeded_graph(12, 2, seed);
        for metric_max in [false, true] {
            let game: Box<dyn Game> = if metric_max {
                Box::new(GreedyBuyGame::max(3.0))
            } else {
                Box::new(GreedyBuyGame::sum(3.0))
            };
            let mut ws = Workspace::new(12);
            let improving = game.improving_moves(&g, agent, &mut ws);
            let best = game.best_responses(&g, agent, &mut ws);
            if let Some(best_cost) = best.first().map(|s| s.new_cost) {
                for s in &improving {
                    assert!(s.new_cost + 1e-9 >= best_cost, "case {case}: seed={seed}");
                }
                assert!(!improving.is_empty(), "case {case}");
            } else {
                assert!(improving.is_empty(), "case {case}");
            }
        }
    }
}

/// Lemma 2.6 as a property: along MAX-SG trajectories on random trees the
/// sorted cost vector strictly lexicographically decreases, and the process
/// converges to a tree of diameter at most 3.
#[test]
fn max_sg_tree_potential() {
    let mut pick = StdRng::seed_from_u64(0x26);
    for case in 0..15 {
        let n = pick.gen_range(4usize..20);
        let seed = pick.gen_range(0u64..200);
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = generators::random_spanning_tree(n, None, &mut rng);
        let game = SwapGame::max();
        let mut dynamics = selfish_ncg::core::Dynamics::new(
            &game,
            tree,
            DynamicsConfig::simulation(n * n * n).with_policy(Policy::Random),
        );
        let mut ws = Workspace::new(n);
        let mut prev = sorted_cost_vector(&game, dynamics.graph(), &mut ws);
        while dynamics.step(&mut rng).is_some() {
            let next = sorted_cost_vector(&game, dynamics.graph(), &mut ws);
            assert!(
                lex_decreased(&prev, &next),
                "case {case}: n={n} seed={seed}"
            );
            prev = next;
        }
        assert!(
            properties::is_star_or_double_star(dynamics.graph()),
            "case {case}: n={n} seed={seed}"
        );
    }
}

/// The SUM-ASG on trees converges under any policy and stays a tree; the
/// social cost never increases along the trajectory (ordinal potential).
#[test]
fn sum_asg_tree_social_cost_potential() {
    let mut pick = StdRng::seed_from_u64(0xa5);
    for case in 0..15 {
        let n = pick.gen_range(4usize..18);
        let seed = pick.gen_range(0u64..200);
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = generators::random_spanning_tree(n, Some(2), &mut rng);
        let game = AsymSwapGame::sum();
        let mut dynamics = selfish_ncg::core::Dynamics::new(
            &game,
            tree,
            DynamicsConfig::simulation(n * n * n).with_policy(Policy::MinIndex),
        );
        let mut ws = Workspace::new(n);
        let mut prev = selfish_ncg::core::social_cost(&game, dynamics.graph(), &mut ws);
        let mut steps = 0usize;
        while dynamics.step(&mut rng).is_some() {
            assert!(is_tree(dynamics.graph()), "case {case}");
            let next = selfish_ncg::core::social_cost(&game, dynamics.graph(), &mut ws);
            assert!(
                next < prev,
                "case {case}: social cost must strictly decrease on trees"
            );
            prev = next;
            steps += 1;
        }
        assert!(steps <= n * n * n, "case {case}");
    }
}

/// Greedy Buy Game dynamics on random connected networks converge to a stable,
/// connected network for both metrics and both policies (the paper's headline
/// empirical observation), and every trajectory move strictly improves its mover.
#[test]
fn gbg_random_instances_converge() {
    let mut pick = StdRng::seed_from_u64(0x6b);
    for case in 0..10 {
        let seed = pick.gen_range(0u64..60);
        let n = 16;
        let g = seeded_graph(n, 2, seed);
        for metric_max in [false, true] {
            let alpha = n as f64 / 4.0;
            let game: Box<dyn Game + Send + Sync> = if metric_max {
                Box::new(GreedyBuyGame::max(alpha))
            } else {
                Box::new(GreedyBuyGame::sum(alpha))
            };
            let mut cfg = DynamicsConfig::simulation(400 * n).with_policy(Policy::MaxCost);
            cfg.record_trajectory = true;
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let out = selfish_ncg::core::run_dynamics(game.as_ref(), &g, &cfg, &mut rng);
            assert!(out.converged(), "case {case}: seed={seed}");
            assert!(is_connected(&out.final_graph), "case {case}");
            for rec in &out.trajectory {
                assert!(rec.new_cost < rec.old_cost, "case {case}");
            }
        }
    }
}

/// Canonical state keys are invariant under edge-insertion order and change
/// whenever the edge set or its ownership changes.
#[test]
fn canonical_keys_identify_states() {
    let mut pick = StdRng::seed_from_u64(0xca);
    for case in 0..30 {
        let seed = pick.gen_range(0u64..500);
        let g = seeded_graph(10, 1, seed);
        let edges: Vec<_> = g.edges().map(|e| (e.owner, e.other)).collect();
        let mut reversed = edges.clone();
        reversed.reverse();
        let h = OwnedGraph::from_owned_edges(10, &reversed);
        assert_eq!(
            canonical_state_key(&g),
            canonical_state_key(&h),
            "case {case}: seed={seed}"
        );
        // Flipping the ownership of one edge changes the labelled key.
        let (owner, other) = edges[0];
        let mut flipped_edges = edges.clone();
        flipped_edges[0] = (other, owner);
        let f = OwnedGraph::from_owned_edges(10, &flipped_edges);
        assert_ne!(
            canonical_state_key(&g),
            canonical_state_key(&f),
            "case {case}: seed={seed}"
        );
    }
}
