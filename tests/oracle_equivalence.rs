//! Randomized equivalence of the incremental distance oracle against
//! from-scratch BFS: on random graphs, under random edge-delta candidates and
//! random applied move sequences, the incremental backend must report exactly
//! the same distance vector, SUM and MAX as a fresh BFS — and the full-BFS
//! backend must agree with both.
//!
//! Driven by seeded loops over the deterministic [`StdRng`] shim; every
//! failure is reproducible from the printed case/seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use selfish_ncg::core::{Game, OracleKind, Workspace};
use selfish_ncg::graph::oracle::{DistanceOracle, EdgeDelta, FullBfsOracle, IncrementalOracle};
use selfish_ncg::graph::{generators, BfsBuffer, DistanceSummary, OwnedGraph};
use selfish_ncg::prelude::*;

fn random_graph<R: Rng>(rng: &mut R) -> OwnedGraph {
    let n = rng.gen_range(4usize..40);
    match rng.gen_range(0u32..4) {
        0 => generators::budgeted_random(n, rng.gen_range(1usize..3).min((n - 2) / 2), rng),
        1 => generators::random_with_m_edges(n, rng.gen_range(n..3 * n), rng),
        2 => generators::random_spanning_tree(n, None, rng),
        _ => {
            // A possibly disconnected graph: a random one with a few edges cut.
            let mut g = generators::random_with_m_edges(n, rng.gen_range(n..2 * n), rng);
            let edges: Vec<_> = g.edges().map(|e| (e.owner, e.other)).collect();
            for &(a, b) in edges.iter().take(rng.gen_range(0usize..3)) {
                g.remove_edge(a, b);
            }
            g
        }
    }
}

/// A random valid delta sequence against `g` (validity tracked on a scratch
/// clone so composed insert/remove sequences stay legal).
fn random_deltas<R: Rng>(g: &OwnedGraph, rng: &mut R) -> Vec<EdgeDelta> {
    let n = g.num_nodes();
    let mut scratch = g.clone();
    let mut deltas = Vec::new();
    for _ in 0..rng.gen_range(1usize..4) {
        let remove = rng.gen_bool(0.5);
        if remove {
            let edges: Vec<_> = scratch.edges().map(|e| (e.owner, e.other)).collect();
            if let Some(&(u, v)) = edges.choose(rng) {
                scratch.remove_edge(u, v);
                deltas.push(EdgeDelta::Remove { u, v });
                continue;
            }
        }
        // Insert a uniformly chosen absent edge, if any exists.
        for _ in 0..20 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && !scratch.has_edge(u, v) {
                scratch.add_edge(u, v);
                deltas.push(EdgeDelta::Insert { u, v });
                break;
            }
        }
    }
    deltas
}

/// Ground truth: apply the deltas to a clone, run a fresh BFS.
fn truth(g: &OwnedGraph, src: usize, deltas: &[EdgeDelta]) -> (Vec<u32>, DistanceSummary) {
    let mut h = g.clone();
    for delta in deltas {
        match *delta {
            EdgeDelta::Insert { u, v } => assert!(h.add_edge(u, v)),
            EdgeDelta::Remove { u, v } => assert!(h.remove_edge(u, v)),
        }
    }
    let mut buf = BfsBuffer::new(h.num_nodes());
    let summary = buf.summary(&h, src);
    (buf.last_distances()[..h.num_nodes()].to_vec(), summary)
}

/// Core satellite property: random graphs × random delta candidates, both
/// backends equal to from-scratch BFS on the full vector, SUM and MAX.
#[test]
fn oracle_matches_bfs_on_random_delta_candidates() {
    let mut rng = StdRng::seed_from_u64(0x0eac1e);
    for case in 0..60 {
        let g = random_graph(&mut rng);
        let n = g.num_nodes();
        let src = rng.gen_range(0..n);
        let mut inc = IncrementalOracle::new(n);
        let mut full = FullBfsOracle::new(n);
        inc.begin(&g, src);
        full.begin(&g, src);
        // Several evaluations against the same base state: consecutive
        // candidates often share delta prefixes, stressing the incremental
        // backend's prefix reuse.
        for round in 0..12 {
            let deltas = random_deltas(&g, &mut rng);
            let (expect_dist, expect_summary) = truth(&g, src, &deltas);
            let mut got = Vec::new();
            let si = inc.evaluate_into(&deltas, &mut got);
            assert_eq!(si, expect_summary, "case {case} round {round}: {deltas:?}");
            assert_eq!(got, expect_dist, "case {case} round {round}: {deltas:?}");
            let sf = full.evaluate_into(&deltas, &mut got);
            assert_eq!(sf, expect_summary, "case {case} round {round} (full)");
            assert_eq!(got, expect_dist, "case {case} round {round} (full)");
        }
        // The pinned base vector survives all evaluations untouched.
        let mut buf = BfsBuffer::new(n);
        let base = buf.run(&g, src).to_vec();
        assert_eq!(inc.base_distances(), base.as_slice(), "case {case}");
        assert_eq!(full.base_distances(), base.as_slice(), "case {case}");
    }
}

/// Applying random *move sequences* to the graph itself: after every applied
/// move the re-pinned oracle must again agree exactly with a fresh BFS.
#[test]
fn oracle_stays_exact_along_random_move_sequences() {
    let mut rng = StdRng::seed_from_u64(0x5e9_u64 ^ 0x51);
    for case in 0..25 {
        let mut g = random_graph(&mut rng);
        let n = g.num_nodes();
        let mut inc = IncrementalOracle::new(n);
        let mut buf = BfsBuffer::new(n);
        for step in 0..10 {
            // Mutate the graph by one random valid single-edge move.
            let deltas = random_deltas(&g, &mut rng);
            if let Some(delta) = deltas.first() {
                match *delta {
                    EdgeDelta::Insert { u, v } => assert!(g.add_edge(u, v)),
                    EdgeDelta::Remove { u, v } => assert!(g.remove_edge(u, v)),
                }
            }
            let src = rng.gen_range(0..n);
            let summary = inc.begin(&g, src);
            assert_eq!(summary, buf.summary(&g, src), "case {case} step {step}");
            assert_eq!(
                inc.base_distances(),
                &buf.run(&g, src)[..n],
                "case {case} step {step}"
            );
        }
    }
}

/// End-to-end equivalence at the game layer: for every scanned agent, the
/// full-BFS and incremental workspaces must produce the *identical* list of
/// improving moves and the identical best response.
#[test]
fn best_responses_identical_across_backends() {
    let mut rng = StdRng::seed_from_u64(0xbe57);
    for case in 0..15 {
        let g = random_graph(&mut rng);
        let n = g.num_nodes();
        let games: Vec<Box<dyn Game>> = vec![
            Box::new(SwapGame::sum()),
            Box::new(SwapGame::max()),
            Box::new(AsymSwapGame::sum()),
            Box::new(GreedyBuyGame::sum(n as f64 / 4.0)),
            Box::new(GreedyBuyGame::max(2.5)),
        ];
        let mut ws_full = Workspace::with_oracle(n, OracleKind::FullBfs);
        let mut ws_inc = Workspace::with_oracle(n, OracleKind::Incremental);
        for game in &games {
            for u in 0..n {
                let full = game.improving_moves(&g, u, &mut ws_full);
                let inc = game.improving_moves(&g, u, &mut ws_inc);
                assert_eq!(full, inc, "case {case}: {} agent {u}", game.name());
                let bf = game.best_response(&g, u, &mut ws_full);
                let bi = game.best_response(&g, u, &mut ws_inc);
                assert_eq!(bf, bi, "case {case}: {} agent {u}", game.name());
            }
        }
    }
}
