//! Randomized equivalence of the incremental and persistent distance oracles
//! against from-scratch BFS: on random graphs, under random edge-delta
//! candidates, random applied move sequences carried across [`begin`] calls
//! (persistent mode), and random whole-strategy (`SetOwned` /
//! `SetNeighbors`) candidates, every backend must report exactly the same
//! distance vector, SUM and MAX as a fresh BFS.
//!
//! Driven by seeded loops over the deterministic [`StdRng`] shim; every
//! failure is reproducible from the printed case/seed. Iteration counts are
//! scaled down in debug builds (the tier-1 `cargo test -q` run) and reach the
//! full ≥ 1000 randomized sequences per game type in `--release` (the CI
//! release job).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use selfish_ncg::core::{
    agent_cost_total, apply_move, edge_cost_after, CostEvaluator, DeltaScore, DistanceMetric,
    EdgeCostMode, Game, Move, OracleKind, Workspace,
};
use selfish_ncg::graph::oracle::{DistanceOracle, EdgeDelta, FullBfsOracle, IncrementalOracle};
use selfish_ncg::graph::{generators, BfsBuffer, DistanceSummary, OwnedGraph};
use selfish_ncg::prelude::*;

/// Scale factor for the randomized loops: modest in debug (tier-1), ≥ 1000
/// sequences per game type in release (CI release job).
const SCALE: usize = if cfg!(debug_assertions) { 1 } else { 10 };

fn random_graph<R: Rng>(rng: &mut R) -> OwnedGraph {
    let n = rng.gen_range(4usize..40);
    match rng.gen_range(0u32..4) {
        0 => generators::budgeted_random(n, rng.gen_range(1usize..3).min((n - 2) / 2), rng),
        1 => generators::random_with_m_edges(n, rng.gen_range(n..3 * n), rng),
        2 => generators::random_spanning_tree(n, None, rng),
        _ => {
            // A possibly disconnected graph: a random one with a few edges cut.
            let mut g = generators::random_with_m_edges(n, rng.gen_range(n..2 * n), rng);
            let edges: Vec<_> = g.edges().map(|e| (e.owner, e.other)).collect();
            for &(a, b) in edges.iter().take(rng.gen_range(0usize..3)) {
                g.remove_edge(a, b);
            }
            g
        }
    }
}

/// A random valid delta sequence against `g` (validity tracked on a scratch
/// clone so composed insert/remove sequences stay legal).
fn random_deltas<R: Rng>(g: &OwnedGraph, rng: &mut R) -> Vec<EdgeDelta> {
    let n = g.num_nodes();
    let mut scratch = g.clone();
    let mut deltas = Vec::new();
    for _ in 0..rng.gen_range(1usize..4) {
        let remove = rng.gen_bool(0.5);
        if remove {
            let edges: Vec<_> = scratch.edges().map(|e| (e.owner, e.other)).collect();
            if let Some(&(u, v)) = edges.choose(rng) {
                scratch.remove_edge(u, v);
                deltas.push(EdgeDelta::Remove { u, v });
                continue;
            }
        }
        // Insert a uniformly chosen absent edge, if any exists.
        for _ in 0..20 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && !scratch.has_edge(u, v) {
                scratch.add_edge(u, v);
                deltas.push(EdgeDelta::Insert { u, v });
                break;
            }
        }
    }
    deltas
}

/// Ground truth: apply the deltas to a clone, run a fresh BFS.
fn truth(g: &OwnedGraph, src: usize, deltas: &[EdgeDelta]) -> (Vec<u16>, DistanceSummary) {
    let mut h = g.clone();
    for delta in deltas {
        match *delta {
            EdgeDelta::Insert { u, v } => assert!(h.add_edge(u, v)),
            EdgeDelta::Remove { u, v } => assert!(h.remove_edge(u, v)),
        }
    }
    let mut buf = BfsBuffer::new(h.num_nodes());
    let summary = buf.summary(&h, src);
    (buf.last_distances()[..h.num_nodes()].to_vec(), summary)
}

/// Core satellite property: random graphs × random delta candidates, both
/// backends equal to from-scratch BFS on the full vector, SUM and MAX.
#[test]
fn oracle_matches_bfs_on_random_delta_candidates() {
    let mut rng = StdRng::seed_from_u64(0x0eac1e);
    for case in 0..60 {
        let g = random_graph(&mut rng);
        let n = g.num_nodes();
        let src = rng.gen_range(0..n);
        let mut inc = IncrementalOracle::new(n);
        let mut full = FullBfsOracle::new(n);
        inc.begin(&g, src);
        full.begin(&g, src);
        // Several evaluations against the same base state: consecutive
        // candidates often share delta prefixes, stressing the incremental
        // backend's prefix reuse.
        for round in 0..12 {
            let deltas = random_deltas(&g, &mut rng);
            let (expect_dist, expect_summary) = truth(&g, src, &deltas);
            let mut got = Vec::new();
            let si = inc.evaluate_into(&deltas, &mut got);
            assert_eq!(si, expect_summary, "case {case} round {round}: {deltas:?}");
            assert_eq!(got, expect_dist, "case {case} round {round}: {deltas:?}");
            let sf = full.evaluate_into(&deltas, &mut got);
            assert_eq!(sf, expect_summary, "case {case} round {round} (full)");
            assert_eq!(got, expect_dist, "case {case} round {round} (full)");
        }
        // The pinned base vector survives all evaluations untouched.
        let mut buf = BfsBuffer::new(n);
        let base = buf.run(&g, src).to_vec();
        assert_eq!(inc.base_distances(), base.as_slice(), "case {case}");
        assert_eq!(full.base_distances(), base.as_slice(), "case {case}");
    }
}

/// Applying random *move sequences* to the graph itself: after every applied
/// move the re-pinned oracle must again agree exactly with a fresh BFS.
#[test]
fn oracle_stays_exact_along_random_move_sequences() {
    let mut rng = StdRng::seed_from_u64(0x5e9_u64 ^ 0x51);
    for case in 0..25 {
        let mut g = random_graph(&mut rng);
        let n = g.num_nodes();
        let mut inc = IncrementalOracle::new(n);
        let mut buf = BfsBuffer::new(n);
        for step in 0..10 {
            // Mutate the graph by one random valid single-edge move.
            let deltas = random_deltas(&g, &mut rng);
            if let Some(delta) = deltas.first() {
                match *delta {
                    EdgeDelta::Insert { u, v } => assert!(g.add_edge(u, v)),
                    EdgeDelta::Remove { u, v } => assert!(g.remove_edge(u, v)),
                }
            }
            let src = rng.gen_range(0..n);
            let summary = inc.begin(&g, src);
            assert_eq!(summary, buf.summary(&g, src), "case {case} step {step}");
            assert_eq!(
                inc.base_distances(),
                &buf.run(&g, src)[..n],
                "case {case} step {step}"
            );
        }
    }
}

/// End-to-end equivalence at the game layer: for every scanned agent, the
/// full-BFS, incremental and persistent workspaces must produce the
/// *identical* list of improving moves and the identical best response.
#[test]
fn best_responses_identical_across_backends() {
    let mut rng = StdRng::seed_from_u64(0xbe57);
    for case in 0..15 {
        let g = random_graph(&mut rng);
        let n = g.num_nodes();
        let games: Vec<Box<dyn Game>> = vec![
            Box::new(SwapGame::sum()),
            Box::new(SwapGame::max()),
            Box::new(AsymSwapGame::sum()),
            Box::new(GreedyBuyGame::sum(n as f64 / 4.0)),
            Box::new(GreedyBuyGame::max(2.5)),
        ];
        let mut ws_full = Workspace::with_oracle(n, OracleKind::FullBfs);
        let mut ws_inc = Workspace::with_oracle(n, OracleKind::Incremental);
        let mut ws_pers = Workspace::with_oracle(n, OracleKind::Persistent);
        for game in &games {
            for u in 0..n {
                let full = game.improving_moves(&g, u, &mut ws_full);
                let inc = game.improving_moves(&g, u, &mut ws_inc);
                let pers = game.improving_moves(&g, u, &mut ws_pers);
                assert_eq!(full, inc, "case {case}: {} agent {u}", game.name());
                assert_eq!(full, pers, "case {case}: {} agent {u}", game.name());
                let bf = game.best_response(&g, u, &mut ws_full);
                let bi = game.best_response(&g, u, &mut ws_inc);
                let bp = game.best_response(&g, u, &mut ws_pers);
                assert_eq!(bf, bi, "case {case}: {} agent {u}", game.name());
                assert_eq!(bf, bp, "case {case}: {} agent {u}", game.name());
            }
        }
    }
}

/// Applies the first delta of a random valid sequence to `g` as a structural
/// mutation, returning `true` if something changed.
fn apply_random_change<R: Rng>(g: &mut OwnedGraph, rng: &mut R) -> bool {
    let deltas = random_deltas(g, rng);
    match deltas.first() {
        Some(&EdgeDelta::Insert { u, v }) => g.add_edge(u, v),
        Some(&EdgeDelta::Remove { u, v }) => g.remove_edge(u, v),
        None => false,
    }
}

/// Tentpole property (SUM and MAX): the persistent oracle carries each
/// source's distance vector across long random move sequences applied to the
/// graph itself, repairing by journal replay, and must agree with a fresh BFS
/// on the full vector and both aggregates after every single move.
#[test]
fn persistent_oracle_exact_along_long_random_move_sequences() {
    let mut rng = StdRng::seed_from_u64(0x9e51);
    let cases = 8 * SCALE;
    let steps = 15;
    let mut replays_seen = 0u64;
    for case in 0..cases {
        let mut g = random_graph(&mut rng);
        let n = g.num_nodes();
        let mut oracle = IncrementalOracle::persistent(n);
        let mut buf = BfsBuffer::new(n);
        // A small rotating set of sources, so re-pins hit warm cache entries.
        let sources: Vec<usize> = (0..3).map(|_| rng.gen_range(0..n)).collect();
        for &s in &sources {
            oracle.begin(&g, s);
        }
        for step in 0..steps {
            apply_random_change(&mut g, &mut rng);
            let src = sources[rng.gen_range(0..sources.len())];
            let summary = oracle.begin(&g, src);
            let expect = buf.summary(&g, src);
            assert_eq!(summary, expect, "case {case} step {step} src {src}");
            assert_eq!(
                summary.sum.is_some(),
                summary.max.is_some(),
                "case {case} step {step}: SUM and MAX agree on connectivity"
            );
            assert_eq!(
                oracle.base_distances(),
                &buf.run(&g, src)[..n],
                "case {case} step {step} src {src}"
            );
        }
        replays_seen += oracle.stats().replayed_begins;
    }
    assert!(
        replays_seen > (cases * steps / 2) as u64,
        "the persistent path must actually replay ({replays_seen} replays)"
    );
}

/// A random strictly-sorted strategy vertex set avoiding `u`.
fn random_strategy<R: Rng>(n: usize, u: usize, rng: &mut R) -> Vec<usize> {
    (0..n).filter(|&v| v != u && rng.gen_bool(0.3)).collect()
}

/// Satellite property: `SetOwned` / `SetNeighbors` delta scoring agrees with
/// apply → BFS → undo on summaries **and** on the reconstructed edge costs,
/// for every backend, SUM and MAX, owner-pays and equal-split.
#[test]
fn whole_strategy_delta_scoring_matches_apply_bfs_undo() {
    let mut rng = StdRng::seed_from_u64(0x5e70);
    let cases = 4 * SCALE;
    let mut sequences = 0usize;
    for case in 0..cases {
        let g = random_graph(&mut rng);
        let n = g.num_nodes();
        for kind in [
            OracleKind::FullBfs,
            OracleKind::Incremental,
            OracleKind::Persistent,
        ] {
            let mut evaluator = CostEvaluator::new(kind, n);
            for _ in 0..5 {
                let u = rng.gen_range(0..n);
                evaluator.begin_agent(&g, u);
                // Several strategies against one pinned base: consecutive
                // candidates share delta prefixes, stressing the stack reuse.
                for round in 0..6 {
                    let strategy = random_strategy(n, u, &mut rng);
                    let mv = if rng.gen_bool(0.5) {
                        Move::SetOwned {
                            new_owned: strategy,
                        }
                    } else {
                        Move::SetNeighbors {
                            new_neighbors: strategy,
                        }
                    };
                    let score = evaluator.try_score(&g, u, &mv);
                    let mut h = g.clone();
                    let ctx = format!("case {case} {} agent {u} round {round}", kind.label());
                    match apply_move(&mut h, u, &mv) {
                        None => assert_eq!(score, DeltaScore::Inapplicable, "{ctx}"),
                        Some(_) => {
                            let mut buf = BfsBuffer::new(n);
                            let expect = buf.summary(&h, u);
                            assert_eq!(score, DeltaScore::Summary(expect), "{ctx}");
                            let DeltaScore::Summary(s) = score else {
                                unreachable!()
                            };
                            for (metric, mode, alpha) in [
                                (DistanceMetric::Sum, EdgeCostMode::OwnerPays, 1.3),
                                (DistanceMetric::Max, EdgeCostMode::OwnerPays, 2.0),
                                (DistanceMetric::Sum, EdgeCostMode::EqualSplit, 0.7),
                                (DistanceMetric::Max, EdgeCostMode::EqualSplit, 3.1),
                            ] {
                                let measured =
                                    agent_cost_total(&h, u, metric, alpha, mode, &mut buf);
                                let scored = edge_cost_after(&g, u, &mv, mode, alpha)
                                    + metric.distance_cost(&s);
                                assert!(
                                    measured == scored || (measured - scored).abs() < 1e-9,
                                    "{ctx}: {measured} vs {scored} ({metric:?}, {mode:?})"
                                );
                            }
                        }
                    }
                    sequences += 1;
                }
            }
        }
    }
    assert_eq!(sequences, cases * 3 * 5 * 6);
}

/// Satellite property: along random improving-move playouts of every game
/// type, the three backends agree on the full improving-move list and the
/// best response at every visited `(state, agent)` — the graph is mutated in
/// place, so the persistent workspaces replay the applied moves' deltas
/// between scans.
#[test]
fn scans_identical_across_engines_along_random_playouts() {
    let target = 120 * SCALE; // scans per game type; ≥ 1200 in release
    type GameFactory = fn(usize) -> Box<dyn Game>;
    let game_types: Vec<(&str, GameFactory)> = vec![
        ("SUM-SG", |_| Box::new(SwapGame::sum())),
        ("MAX-SG", |_| Box::new(SwapGame::max())),
        ("SUM-ASG", |_| Box::new(AsymSwapGame::sum())),
        ("MAX-ASG", |_| Box::new(AsymSwapGame::max())),
        ("SUM-GBG", |n| Box::new(GreedyBuyGame::sum(n as f64 / 4.0))),
        ("MAX-GBG", |_| Box::new(GreedyBuyGame::max(2.5))),
        ("SUM-BG", |n| Box::new(BuyGame::sum(n as f64 / 4.0))),
    ];
    for (label, make) in game_types {
        let mut rng = StdRng::seed_from_u64(0x91a7);
        let mut scans = 0usize;
        while scans < target {
            // Small instances keep the exponential BG enumeration feasible.
            let n = rng.gen_range(6usize..11);
            let mut g = generators::random_with_m_edges(n, rng.gen_range(n..2 * n), &mut rng);
            let game = make(n);
            let mut ws_full = Workspace::with_oracle(n, OracleKind::FullBfs);
            let mut ws_inc = Workspace::with_oracle(n, OracleKind::Incremental);
            let mut ws_pers = Workspace::with_oracle(n, OracleKind::Persistent);
            for _step in 0..12 {
                let u = rng.gen_range(0..n);
                let full = game.improving_moves(&g, u, &mut ws_full);
                let inc = game.improving_moves(&g, u, &mut ws_inc);
                let pers = game.improving_moves(&g, u, &mut ws_pers);
                assert_eq!(full, inc, "{label} agent {u}");
                assert_eq!(full, pers, "{label} agent {u}");
                let bf = game.best_response(&g, u, &mut ws_full);
                let bp = game.best_response(&g, u, &mut ws_pers);
                assert_eq!(bf, bp, "{label} agent {u}");
                scans += 1;
                match bf {
                    Some(scored) => {
                        apply_move(&mut g, u, &scored.mv).expect("best response applies");
                    }
                    None => {
                        // Agent is happy: nudge the state with a random change
                        // so the playout keeps moving.
                        apply_random_change(&mut g, &mut rng);
                    }
                }
            }
        }
    }
}

/// u16 boundary: distances up to exactly `UNREACHABLE - 1` (65534, realised
/// by a path on `MAX_NODES` = 65535 vertices) are representable, and the
/// cache-arithmetic kernel's saturating `far + 1` cannot alias a real
/// distance into the `UNREACHABLE` marker: a chord scored from one path end
/// drives `far + 1` to exactly 65535 at the far endpoint, where the `min`
/// with the source side must still win.
#[test]
fn u16_boundary_distances_at_unreachable_minus_one() {
    use selfish_ncg::graph::distances::{MAX_NODES, UNREACHABLE};
    let n = MAX_NODES;
    let g = generators::path(n);
    let mut buf = BfsBuffer::new(n);
    let summary = buf.summary(&g, 0);
    let dist = buf.last_distances();
    assert_eq!(
        dist[n - 1],
        UNREACHABLE - 1,
        "diameter endpoint sits at exactly UNREACHABLE - 1"
    );
    assert_eq!(summary.max, Some(u32::from(UNREACHABLE) - 1));
    assert_eq!(summary.sum, Some((n as u64 - 1) * n as u64 / 2));
    // Cache arithmetic across the boundary: park the far end, pin the near
    // end, score the chord (0, n-1). `dist_far(0) = 65534`, so the kernel's
    // `far.saturating_add(1)` saturates to exactly `UNREACHABLE` there — the
    // vertex must still be served by the source side (distance 0), not
    // counted unreachable.
    let mut oracle = IncrementalOracle::persistent(n);
    oracle.pin_sources(&g, &[n - 1]);
    oracle.begin(&g, 0);
    let (got, exact) = oracle
        .evaluate_insert_via_cache(&g, &[], 0, n - 1)
        .expect("cache-arithmetic path must serve the parked far end");
    assert!(exact, "a pure purchase is scored exactly");
    let mut h = g.clone();
    assert!(h.add_edge(0, n - 1));
    assert_eq!(got, buf.summary(&h, 0));
    // And a genuinely unreachable vertex stays DISCONNECTED through the
    // saturating arithmetic.
    let mut g2 = OwnedGraph::new(n);
    for i in 0..n - 2 {
        g2.add_edge(i, i + 1);
    }
    let mut oracle2 = IncrementalOracle::persistent(n);
    oracle2.pin_sources(&g2, &[n - 2]);
    oracle2.begin(&g2, 0);
    let (got2, _) = oracle2
        .evaluate_insert_via_cache(&g2, &[], 0, n - 2)
        .expect("cache-arithmetic path");
    assert_eq!(got2, DistanceSummary::DISCONNECTED);
}

/// Satellite property: dirty-agent tracking fed by the persistent oracle's
/// exact changed-vertex export still ends in certified pure Nash equilibria —
/// the final confirmation sweep keeps termination exact even though distance
/// vectors are carried across steps.
#[test]
fn dirty_tracking_with_persistent_oracle_certifies_equilibria() {
    let trials = 3 * SCALE;
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(0xd1b7 + trial as u64);
        let n = 12 + (trial % 5) * 3;
        let initial = generators::random_with_m_edges(n, 2 * n, &mut rng);
        let games: Vec<Box<dyn Game + Send + Sync>> = vec![
            Box::new(AsymSwapGame::sum()),
            Box::new(GreedyBuyGame::sum(n as f64 / 4.0)),
            Box::new(GreedyBuyGame::max(2.5)),
        ];
        for game in &games {
            let mut cfg = DynamicsConfig::simulation(400 * n);
            cfg.oracle = OracleKind::Persistent;
            cfg.dirty_agents = true;
            let out = run_dynamics(game.as_ref(), &initial, &cfg, &mut rng);
            assert!(out.converged(), "trial {trial}: {}", game.name());
            // Certify with an untouched workspace: no cached state involved.
            let mut ws = Workspace::new(n);
            assert!(
                selfish_ncg::core::equilibrium::is_stable(game.as_ref(), &out.final_graph, &mut ws),
                "trial {trial}: {} final state must be stable",
                game.name()
            );
        }
    }
}
